//! Declarative fleet-campaign specs: a TOML-subset loader with
//! load-time validation.
//!
//! A spec names a campaign and a list of scenarios; each scenario is a
//! [`Runner`] plus the full parameter set a run needs ([`RunParams`]).
//! Everything a run could get wrong — unknown runner, queue size that
//! violates the runner's block granularity, a fault plan the runner
//! cannot survive, an out-of-range kill target, a malformed seed range —
//! is rejected *at load time* with a structured [`SpecError`] naming the
//! offending line, instead of an assert ten minutes into a campaign.
//!
//! The grammar is a deliberately small TOML subset (no external parser
//! crates): `[campaign]` / `[defaults]` tables, `[[scenario]]` /
//! `[[override]]` array tables, and `key = value` pairs where a value is
//! an integer (decimal or `0x` hex, `_` separators allowed), a bool, a
//! `"string"`, or a flat `[a, b, c]` list. `#` starts a comment.

use cohort::scenarios::{sharded_engines_for, Runner, Scenario, ShardSpec, Workload};
use cohort_os::addrspace::MapPolicy;
use cohort_os::driver::Placement;
use cohort_sim::dram::DramConfig;
use cohort_sim::faultinject::{splitmix64, FaultKind, FaultPlan, FaultSpecError, MAX_FAULT_CYCLE};

/// Upper bound on total runs in one campaign — a typo guard, not a
/// scaling limit (500-seed chaos campaigns sit far below it).
pub const MAX_TOTAL_RUNS: usize = 100_000;

/// Upper bound on seeds per scenario.
pub const MAX_SEEDS_PER_SCENARIO: usize = 10_000;

/// Largest queue a spec may ask for (memory guard).
pub const MAX_QUEUE: u64 = 1 << 20;

/// A structured spec-validation error. Every variant carries enough to
/// point at the exact offending entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec file could not be read.
    Io {
        /// Path as given.
        path: String,
        /// OS error text.
        msg: String,
    },
    /// A line that is neither a section header, a `key = value` pair,
    /// a comment nor blank.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A section header outside the grammar.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The header as written.
        section: String,
    },
    /// A key not recognised in its section.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// Section the key appeared in.
        section: String,
        /// The key.
        key: String,
    },
    /// A required key is absent.
    MissingKey {
        /// Section the key belongs to.
        section: String,
        /// The key.
        key: String,
    },
    /// A key's value has the wrong type, an unknown enum name, or an
    /// out-of-range magnitude.
    BadValue {
        /// 1-based line number (0 when synthesised during resolution).
        line: usize,
        /// The key.
        key: String,
        /// What was expected / what went wrong.
        msg: String,
    },
    /// A seed range that does not parse or is empty/oversized.
    BadSeedRange {
        /// 1-based line number.
        line: usize,
        /// The range text as written.
        text: String,
        /// What went wrong.
        msg: String,
    },
    /// Two scenarios share a name (reproduction pairs would be ambiguous).
    DuplicateScenario {
        /// The repeated name.
        name: String,
    },
    /// The spec defines no scenarios.
    NoScenarios,
    /// The campaign's total run count exceeds [`MAX_TOTAL_RUNS`].
    TooManyRuns {
        /// Requested total.
        runs: usize,
    },
    /// A scenario's fault grammar failed to parse.
    Fault {
        /// Scenario name.
        scenario: String,
        /// The structured fault-grammar error.
        err: FaultSpecError,
    },
    /// A queue size violating the runner's block granularity.
    QueueGranularity {
        /// Scenario name.
        scenario: String,
        /// Requested queue size.
        queue: u64,
        /// Required multiple.
        multiple: u64,
        /// The runner imposing it.
        runner: Runner,
    },
    /// A fault the scenario's runner has no recovery story for — it
    /// would wedge or trivially fail the run, so it is a spec bug.
    FaultUnsupported {
        /// Scenario name.
        scenario: String,
        /// The fault label (`kill`, `maple-kill`, …).
        fault: &'static str,
        /// The runner.
        runner: Runner,
        /// Why the combination is rejected.
        why: &'static str,
    },
    /// A kill fault targeting an engine the scenario does not bind.
    EngineTarget {
        /// Scenario name.
        scenario: String,
        /// Requested engine index.
        engine: u64,
        /// Engines the scenario binds.
        engines: usize,
    },
    /// An `[[override]]` naming a scenario that does not exist.
    OverrideTarget {
        /// The name as written.
        scenario: String,
    },
    /// An `[[override]]` naming a seed outside its scenario's seed set.
    OverrideSeed {
        /// Scenario name.
        scenario: String,
        /// The seed as written.
        seed: u64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Io { path, msg } => write!(f, "spec {path}: {msg}"),
            SpecError::Syntax { line, msg } => write!(f, "spec line {line}: {msg}"),
            SpecError::UnknownSection { line, section } => {
                write!(f, "spec line {line}: unknown section [{section}]")
            }
            SpecError::UnknownKey { line, section, key } => {
                write!(f, "spec line {line}: unknown key {key:?} in [{section}]")
            }
            SpecError::MissingKey { section, key } => {
                write!(f, "spec: [{section}] is missing required key {key:?}")
            }
            SpecError::BadValue { line, key, msg } => {
                write!(f, "spec line {line}: bad value for {key:?}: {msg}")
            }
            SpecError::BadSeedRange { line, text, msg } => {
                write!(f, "spec line {line}: bad seed range {text:?}: {msg}")
            }
            SpecError::DuplicateScenario { name } => {
                write!(f, "spec: duplicate scenario name {name:?}")
            }
            SpecError::NoScenarios => f.write_str("spec: no [[scenario]] sections"),
            SpecError::TooManyRuns { runs } => {
                write!(
                    f,
                    "spec: {runs} total runs exceeds the {MAX_TOTAL_RUNS} cap"
                )
            }
            SpecError::Fault { scenario, err } => {
                write!(f, "spec: scenario {scenario:?}: {err}")
            }
            SpecError::QueueGranularity {
                scenario,
                queue,
                multiple,
                runner,
            } => write!(
                f,
                "spec: scenario {scenario:?}: queue {queue} is not a multiple \
                 of {multiple} (required by runner {runner})"
            ),
            SpecError::FaultUnsupported {
                scenario,
                fault,
                runner,
                why,
            } => write!(
                f,
                "spec: scenario {scenario:?}: {fault} fault is not supported \
                 by runner {runner}: {why}"
            ),
            SpecError::EngineTarget {
                scenario,
                engine,
                engines,
            } => write!(
                f,
                "spec: scenario {scenario:?}: kill targets engine {engine} \
                 but the scenario binds {engines} shard engine(s)"
            ),
            SpecError::OverrideTarget { scenario } => {
                write!(f, "spec: [[override]] names unknown scenario {scenario:?}")
            }
            SpecError::OverrideSeed { scenario, seed } => write!(
                f,
                "spec: [[override]] for scenario {scenario:?} names seed \
                 {seed} outside the scenario's seed set"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// The full parameter set of one run, before the seed is applied.
/// Defaults reproduce `Scenario::new(Aes, 256, 16)` with platform
/// settings, single shard, round-robin placement, no faults.
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Accelerator workload (`"sha"` / `"aes"`).
    pub workload: Workload,
    /// Total input elements == input queue length.
    pub queue: u64,
    /// Pointer-update batching factor.
    pub batch: u64,
    /// RCM backoff window in cycles.
    pub backoff: u64,
    /// Page-mapping policy (`"eager"` / `"lazy"` / `"hugepage"`).
    pub policy: MapPolicy,
    /// Engine forward-progress watchdog budget (0 = runner default).
    pub watchdog: u64,
    /// Simulator worker threads per run (results are thread-invariant).
    pub sim_threads: usize,
    /// Shard count for the sharded runner.
    pub shards: usize,
    /// Shard placement policy (`"rr"` / `"occupancy"`).
    pub placement: Placement,
    /// Skewed element-run sizes for the sharded runner.
    pub skew: bool,
    /// Explicit engine count; `None` derives shards + spare-for-kill.
    pub engines: Option<usize>,
    /// Parsed base fault plan (before per-seed variation).
    pub faults: FaultPlan,
    /// The fault grammar as written (reports echo it).
    pub faults_text: String,
    /// Max cycles of per-seed jitter added to each explicit fault's
    /// firing cycle (deterministic in the seed; 0 = none).
    pub fault_jitter: u64,
    /// When true (default), the run seed is mixed into the random fault
    /// schedule's seed, so every seed explores a different schedule.
    pub vary_fault_seed: bool,
    /// Opt-in DRAM contention model (`dram = "spec"` in the same grammar
    /// as `socrun --dram`); `None` keeps the flat-latency memory system.
    pub dram: Option<DramConfig>,
}

impl Default for RunParams {
    fn default() -> Self {
        Self {
            workload: Workload::Aes,
            queue: 256,
            batch: 16,
            backoff: 700,
            policy: MapPolicy::Eager,
            watchdog: 0,
            sim_threads: 1,
            shards: 1,
            placement: Placement::RoundRobin,
            skew: false,
            engines: None,
            faults: FaultPlan::default(),
            faults_text: String::new(),
            fault_jitter: 0,
            vary_fault_seed: true,
            dram: None,
        }
    }
}

impl RunParams {
    /// Engines the SoC will instantiate for a sharded run: explicit when
    /// the spec set `engines =`, else shards plus a spare when the fault
    /// plan kills a shard.
    pub fn resolved_engines(&self) -> usize {
        self.engines
            .unwrap_or_else(|| sharded_engines_for(&self.faults, self.shards))
    }

    /// The fault plan for one run seed: explicit event cycles jittered by
    /// `fault_jitter` and the random schedule reseeded with the run seed
    /// mixed in. Both are pure functions of `(params, seed)`, so a
    /// reported failing seed replays the exact same schedule.
    pub fn plan_for_seed(&self, seed: u64) -> FaultPlan {
        let mut plan = self.faults.clone();
        if self.fault_jitter > 0 {
            for (i, ev) in plan.events.iter_mut().enumerate() {
                let mut st = seed ^ 0xf1ee_7c0d_0000_0000u64.wrapping_add((i as u64) << 8);
                let delta = splitmix64(&mut st) % (self.fault_jitter + 1);
                ev.at_cycle = (ev.at_cycle + delta).min(MAX_FAULT_CYCLE);
            }
        }
        if self.vary_fault_seed {
            if let Some(r) = plan.random.as_mut() {
                let mut st = r.seed ^ seed.rotate_left(17);
                r.seed = splitmix64(&mut st);
            }
        }
        plan
    }

    /// Materialises the scenario (and shard spec, for sharded runners)
    /// for one seed.
    pub fn to_scenario(&self, runner: Runner, seed: u64) -> (Scenario, Option<ShardSpec>) {
        let mut s = Scenario::new(self.workload, self.queue, self.batch);
        s.policy = self.policy;
        s.backoff = self.backoff;
        s.watchdog = self.watchdog;
        s.seed = seed;
        s.soc.threads = self.sim_threads.max(1);
        s.soc.faults = self.plan_for_seed(seed);
        s.soc.dram = self.dram.clone();
        let shard = if runner == Runner::Sharded {
            s.soc.engines = self.resolved_engines();
            Some(
                ShardSpec::new(self.shards)
                    .with_placement(self.placement)
                    .with_skew(self.skew),
            )
        } else {
            None
        };
        (s, shard)
    }
}

/// One scenario of a campaign: a runner, a seed set, base parameters and
/// fully-resolved per-seed overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique scenario name (reports key `(spec, scenario, seed)` on it).
    pub name: String,
    /// Which runner executes it.
    pub runner: Runner,
    /// The seeds to run, in report order.
    pub seeds: Vec<u64>,
    /// Parameters shared by every seed.
    pub base: RunParams,
    /// Per-seed parameter overrides, fully resolved against `base`.
    pub overrides: Vec<(u64, RunParams)>,
}

impl ScenarioSpec {
    /// The effective parameters for one seed.
    pub fn params_for(&self, seed: u64) -> &RunParams {
        self.overrides
            .iter()
            .find(|(s, _)| *s == seed)
            .map_or(&self.base, |(_, p)| p)
    }
}

/// A parsed, validated campaign spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Campaign name (output files are `fleet_<name>.*`).
    pub name: String,
    /// Host worker threads for the fan-out (0 = one per available core).
    pub host_threads: usize,
    /// Per-run wall-clock watchdog in milliseconds (0 = disabled). A run
    /// exceeding it is classified `hung` — note this makes outcome
    /// classification host-speed-dependent, so the determinism suite and
    /// CI gates leave it at 0 and rely on the simulator's cycle budget.
    pub hang_wall_ms: u64,
    /// The scenarios, in spec order.
    pub scenarios: Vec<ScenarioSpec>,
}

impl FleetSpec {
    /// Loads and validates a spec file.
    ///
    /// # Errors
    /// [`SpecError::Io`] when the file cannot be read, else whatever
    /// [`FleetSpec::parse`] rejects.
    pub fn load(path: &std::path::Path) -> Result<FleetSpec, SpecError> {
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Total runs across all scenarios.
    pub fn total_runs(&self) -> usize {
        self.scenarios.iter().map(|s| s.seeds.len()).sum()
    }

    /// Keeps only the named scenario; returns false when absent.
    pub fn retain_scenario(&mut self, name: &str) -> bool {
        self.scenarios.retain(|s| s.name == name);
        !self.scenarios.is_empty()
    }

    /// Caps every scenario at its first `n` seeds (smoke tests shrink
    /// committed campaign specs without forking them).
    pub fn truncate_seeds(&mut self, n: usize) {
        for s in &mut self.scenarios {
            s.seeds.truncate(n.max(1));
            let seeds = &s.seeds;
            s.overrides.retain(|(seed, _)| seeds.contains(seed));
        }
    }

    /// Parses and validates spec text.
    ///
    /// # Errors
    /// A structured [`SpecError`] naming the offending line/entry.
    pub fn parse(text: &str) -> Result<FleetSpec, SpecError> {
        let raw = RawSpec::parse(text)?;

        // [campaign]
        let mut name = None;
        let mut default_seeds: Option<(Vec<u64>, usize)> = None;
        let mut host_threads = 0usize;
        let mut hang_wall_ms = 0u64;
        for (key, value, line) in &raw.campaign {
            match key.as_str() {
                "name" => name = Some(expect_str(key, value, *line)?),
                "seeds" => default_seeds = Some((parse_seeds(value, *line)?, *line)),
                "host_threads" => host_threads = expect_int(key, value, *line)? as usize,
                "hang_wall_ms" => hang_wall_ms = expect_int(key, value, *line)?,
                _ => {
                    return Err(SpecError::UnknownKey {
                        line: *line,
                        section: "campaign".into(),
                        key: key.clone(),
                    })
                }
            }
        }
        let name = name.ok_or_else(|| SpecError::MissingKey {
            section: "campaign".into(),
            key: "name".into(),
        })?;

        // [defaults]
        let mut defaults = RunParams::default();
        for (key, value, line) in &raw.defaults {
            if !apply_param(&mut defaults, key, value, *line, "defaults")? {
                return Err(SpecError::UnknownKey {
                    line: *line,
                    section: "defaults".into(),
                    key: key.clone(),
                });
            }
        }

        // [[scenario]]
        let mut scenarios: Vec<ScenarioSpec> = Vec::new();
        for table in &raw.scenarios {
            // Resolve the name first so every later error can cite it.
            let ctx = table
                .iter()
                .find(|(k, _, _)| k == "name")
                .and_then(|(_, v, _)| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| "scenario".into());
            let mut sc_name = None;
            let mut runner = None;
            let mut seeds = None;
            let mut base = defaults.clone();
            for (key, value, line) in table {
                match key.as_str() {
                    "name" => sc_name = Some(expect_str(key, value, *line)?),
                    "runner" => {
                        let text = expect_str(key, value, *line)?;
                        runner = Some(Runner::parse(&text).ok_or_else(|| SpecError::BadValue {
                            line: *line,
                            key: key.clone(),
                            msg: format!(
                                "unknown runner {text:?} (one of: {})",
                                Runner::ALL.map(|r| r.name()).join(", ")
                            ),
                        })?);
                    }
                    "seeds" => seeds = Some(parse_seeds(value, *line)?),
                    _ => {
                        if !apply_param(&mut base, key, value, *line, &ctx)? {
                            return Err(SpecError::UnknownKey {
                                line: *line,
                                section: "scenario".into(),
                                key: key.clone(),
                            });
                        }
                    }
                }
            }
            let sc_name = sc_name.ok_or_else(|| SpecError::MissingKey {
                section: "scenario".into(),
                key: "name".into(),
            })?;
            if scenarios.iter().any(|s| s.name == sc_name) {
                return Err(SpecError::DuplicateScenario { name: sc_name });
            }
            let runner = runner.ok_or_else(|| SpecError::MissingKey {
                section: "scenario".into(),
                key: "runner".into(),
            })?;
            let seeds = match (seeds, &default_seeds) {
                (Some(s), _) => s,
                (None, Some((s, _))) => s.clone(),
                (None, None) => (0..8).collect(),
            };
            validate_params(&sc_name, runner, &base)?;
            scenarios.push(ScenarioSpec {
                name: sc_name,
                runner,
                seeds,
                base,
                overrides: Vec::new(),
            });
        }
        if scenarios.is_empty() {
            return Err(SpecError::NoScenarios);
        }

        // [[override]]
        for table in &raw.overrides {
            let mut target = None;
            let mut seed = None;
            let mut patch: Vec<(String, Value, usize)> = Vec::new();
            for (key, value, line) in table {
                match key.as_str() {
                    "scenario" => target = Some(expect_str(key, value, *line)?),
                    "seed" => seed = Some(expect_int(key, value, *line)?),
                    _ => patch.push((key.clone(), value.clone(), *line)),
                }
            }
            let target = target.ok_or_else(|| SpecError::MissingKey {
                section: "override".into(),
                key: "scenario".into(),
            })?;
            let seed = seed.ok_or_else(|| SpecError::MissingKey {
                section: "override".into(),
                key: "seed".into(),
            })?;
            let sc = scenarios
                .iter_mut()
                .find(|s| s.name == target)
                .ok_or(SpecError::OverrideTarget { scenario: target })?;
            if !sc.seeds.contains(&seed) {
                return Err(SpecError::OverrideSeed {
                    scenario: sc.name.clone(),
                    seed,
                });
            }
            let mut params = sc.base.clone();
            let ctx = sc.name.clone();
            for (key, value, line) in &patch {
                if !apply_param(&mut params, key, value, *line, &ctx)? {
                    return Err(SpecError::UnknownKey {
                        line: *line,
                        section: "override".into(),
                        key: key.clone(),
                    });
                }
            }
            validate_params(&sc.name, sc.runner, &params)?;
            sc.overrides.retain(|(s, _)| *s != seed);
            sc.overrides.push((seed, params));
        }

        let spec = FleetSpec {
            name,
            host_threads,
            hang_wall_ms,
            scenarios,
        };
        if spec.total_runs() > MAX_TOTAL_RUNS {
            return Err(SpecError::TooManyRuns {
                runs: spec.total_runs(),
            });
        }
        Ok(spec)
    }
}

/// Applies one `key = value` pair to a [`RunParams`]; `Ok(false)` means
/// the key is not a run parameter (the caller owns the unknown-key error
/// so it can name its section). `ctx` names the owning scenario (or
/// section) so fault-grammar errors stay attributable.
fn apply_param(
    p: &mut RunParams,
    key: &str,
    value: &Value,
    line: usize,
    ctx: &str,
) -> Result<bool, SpecError> {
    let bad = |msg: String| SpecError::BadValue {
        line,
        key: key.to_string(),
        msg,
    };
    match key {
        "workload" => {
            p.workload = match expect_str(key, value, line)?.as_str() {
                "sha" => Workload::Sha,
                "aes" => Workload::Aes,
                other => return Err(bad(format!("unknown workload {other:?} (sha|aes)"))),
            }
        }
        "queue" => {
            p.queue = expect_int(key, value, line)?;
            if p.queue == 0 || p.queue > MAX_QUEUE {
                return Err(bad(format!("queue must be in 1..={MAX_QUEUE}")));
            }
        }
        "batch" => p.batch = expect_int(key, value, line)?.max(1),
        "backoff" => p.backoff = expect_int(key, value, line)?,
        "policy" => {
            p.policy = match expect_str(key, value, line)?.as_str() {
                "eager" => MapPolicy::Eager,
                "lazy" => MapPolicy::Lazy,
                "hugepage" | "huge" => MapPolicy::HugePages,
                other => {
                    return Err(bad(format!(
                        "unknown policy {other:?} (eager|lazy|hugepage)"
                    )))
                }
            }
        }
        "watchdog" => p.watchdog = expect_int(key, value, line)?,
        "sim_threads" => p.sim_threads = (expect_int(key, value, line)? as usize).max(1),
        "shards" => {
            p.shards = expect_int(key, value, line)? as usize;
            if p.shards == 0 || p.shards > 64 {
                return Err(bad("shards must be in 1..=64".into()));
            }
        }
        "placement" => {
            let text = expect_str(key, value, line)?;
            p.placement = text.parse::<Placement>().map_err(bad)?;
        }
        "skew" => p.skew = expect_bool(key, value, line)?,
        "engines" => {
            let n = expect_int(key, value, line)? as usize;
            if n == 0 || n > 64 {
                return Err(bad("engines must be in 1..=64".into()));
            }
            p.engines = Some(n);
        }
        "faults" => {
            let text = expect_str(key, value, line)?;
            p.faults = FaultPlan::parse(&text).map_err(|err| SpecError::Fault {
                scenario: ctx.to_string(),
                err,
            })?;
            p.faults_text = text;
        }
        "fault_jitter" => p.fault_jitter = expect_int(key, value, line)?,
        "vary_fault_seed" => p.vary_fault_seed = expect_bool(key, value, line)?,
        "dram" => {
            let text = expect_str(key, value, line)?;
            p.dram = Some(DramConfig::from_spec(&text).map_err(|e| bad(e.to_string()))?);
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Cross-field validation of one resolved parameter set: queue
/// granularity, shard/engine arithmetic, and fault/runner compatibility.
fn validate_params(scenario: &str, runner: Runner, p: &RunParams) -> Result<(), SpecError> {
    let multiple = runner.queue_multiple(p.workload);
    if !p.queue.is_multiple_of(multiple) {
        return Err(SpecError::QueueGranularity {
            scenario: scenario.to_string(),
            queue: p.queue,
            multiple,
            runner,
        });
    }
    let unsupported = |fault: &'static str, why: &'static str| SpecError::FaultUnsupported {
        scenario: scenario.to_string(),
        fault,
        runner,
        why,
    };
    for ev in p.faults.schedule() {
        match ev.kind {
            FaultKind::KillEngine { engine } => match runner {
                Runner::Sharded => {
                    if engine as usize >= p.shards {
                        return Err(SpecError::EngineTarget {
                            scenario: scenario.to_string(),
                            engine,
                            engines: p.shards,
                        });
                    }
                }
                Runner::Failover => {
                    if engine != 1 {
                        return Err(unsupported(
                            "kill",
                            "the failover chain arms only the middle (SHA, \
                             engine 1) engine; kill@C:1 is the survivable fault",
                        ));
                    }
                }
                Runner::Mesh16 => {
                    if engine >= 4 {
                        return Err(SpecError::EngineTarget {
                            scenario: scenario.to_string(),
                            engine,
                            engines: 4,
                        });
                    }
                }
                _ => {
                    return Err(unsupported(
                        "kill",
                        "no failover stack is armed; a fail-stop would wedge the run",
                    ))
                }
            },
            FaultKind::MapleStall { .. } | FaultKind::KillMaple if runner != Runner::DmaChaos => {
                return Err(unsupported(
                    ev.kind.label(),
                    "only the dma-chaos runner reads back MAPLE's \
                     dead-unit sentinel instead of hanging",
                ));
            }
            _ => {}
        }
    }
    if runner == Runner::Sharded {
        let needed = sharded_engines_for(&p.faults, p.shards);
        let engines = p.resolved_engines();
        if engines < needed {
            return Err(SpecError::BadValue {
                line: 0,
                key: "engines".into(),
                msg: format!(
                    "scenario {scenario:?} needs {needed} engine(s) \
                     ({} shard(s){}) but the spec binds {engines}",
                    p.shards,
                    if needed > p.shards {
                        " plus a failover spare"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
    Ok(())
}

/// A scalar or flat-list TOML value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Int(u64),
    Bool(bool),
    Str(String),
    List(Vec<Value>),
}

fn expect_str(key: &str, value: &Value, line: usize) -> Result<String, SpecError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        other => Err(SpecError::BadValue {
            line,
            key: key.to_string(),
            msg: format!("expected a \"string\", got {other:?}"),
        }),
    }
}

fn expect_int(key: &str, value: &Value, line: usize) -> Result<u64, SpecError> {
    match value {
        Value::Int(n) => Ok(*n),
        other => Err(SpecError::BadValue {
            line,
            key: key.to_string(),
            msg: format!("expected an integer, got {other:?}"),
        }),
    }
}

fn expect_bool(key: &str, value: &Value, line: usize) -> Result<bool, SpecError> {
    match value {
        Value::Bool(b) => Ok(*b),
        other => Err(SpecError::BadValue {
            line,
            key: key.to_string(),
            msg: format!("expected true/false, got {other:?}"),
        }),
    }
}

/// Parses a seed set: `"A..B"` (exclusive), `"A..=B"` (inclusive) or a
/// list of integers.
fn parse_seeds(value: &Value, line: usize) -> Result<Vec<u64>, SpecError> {
    let bad = |text: &str, msg: &str| SpecError::BadSeedRange {
        line,
        text: text.to_string(),
        msg: msg.to_string(),
    };
    let seeds = match value {
        Value::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                match it {
                    Value::Int(n) => out.push(*n),
                    other => {
                        return Err(bad(&format!("{other:?}"), "seed lists hold integers only"))
                    }
                }
            }
            out
        }
        Value::Str(text) => {
            let (lo, hi, inclusive) = match (text.split_once("..="), text.split_once("..")) {
                (Some((a, b)), _) => (a, b, true),
                (None, Some((a, b))) => (a, b, false),
                (None, None) => return Err(bad(text, "expected \"A..B\" or \"A..=B\"")),
            };
            let lo = parse_int(lo).ok_or_else(|| bad(text, "range start is not a number"))?;
            let hi = parse_int(hi).ok_or_else(|| bad(text, "range end is not a number"))?;
            let hi = if inclusive { hi.saturating_add(1) } else { hi };
            if hi <= lo {
                return Err(bad(text, "empty range"));
            }
            if hi - lo > MAX_SEEDS_PER_SCENARIO as u64 {
                return Err(bad(text, "range exceeds the per-scenario seed cap"));
            }
            (lo..hi).collect()
        }
        other => {
            return Err(bad(
                &format!("{other:?}"),
                "expected a \"A..B\" string or a seed list",
            ))
        }
    };
    if seeds.is_empty() {
        return Err(bad("", "no seeds"));
    }
    if seeds.len() > MAX_SEEDS_PER_SCENARIO {
        return Err(bad("", "exceeds the per-scenario seed cap"));
    }
    Ok(seeds)
}

/// The raw line-level parse: section tables with `(key, value, line)`
/// triples, before any interpretation.
#[derive(Default)]
struct RawSpec {
    campaign: Vec<(String, Value, usize)>,
    defaults: Vec<(String, Value, usize)>,
    scenarios: Vec<Vec<(String, Value, usize)>>,
    overrides: Vec<Vec<(String, Value, usize)>>,
}

enum Section {
    None,
    Campaign,
    Defaults,
    Scenario,
    Override,
}

impl RawSpec {
    fn parse(text: &str) -> Result<RawSpec, SpecError> {
        let mut raw = RawSpec::default();
        let mut section = Section::None;
        for (idx, full_line) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = strip_comment(full_line);
            let t = stripped.trim();
            if t.is_empty() {
                continue;
            }
            if let Some(header) = t.strip_prefix("[[").and_then(|h| h.strip_suffix("]]")) {
                match header.trim() {
                    "scenario" => {
                        raw.scenarios.push(Vec::new());
                        section = Section::Scenario;
                    }
                    "override" => {
                        raw.overrides.push(Vec::new());
                        section = Section::Override;
                    }
                    other => {
                        return Err(SpecError::UnknownSection {
                            line,
                            section: format!("[{other}]"),
                        })
                    }
                }
                continue;
            }
            if let Some(header) = t.strip_prefix('[').and_then(|h| h.strip_suffix(']')) {
                section = match header.trim() {
                    "campaign" => Section::Campaign,
                    "defaults" => Section::Defaults,
                    other => {
                        return Err(SpecError::UnknownSection {
                            line,
                            section: other.to_string(),
                        })
                    }
                };
                continue;
            }
            let Some((key, value_text)) = t.split_once('=') else {
                return Err(SpecError::Syntax {
                    line,
                    msg: format!("expected `key = value` or a section header, got {t:?}"),
                });
            };
            let key = key.trim().to_string();
            if key.is_empty() {
                return Err(SpecError::Syntax {
                    line,
                    msg: "empty key".into(),
                });
            }
            let value = parse_value(value_text.trim(), line)?;
            let slot = match section {
                Section::Campaign => &mut raw.campaign,
                Section::Defaults => &mut raw.defaults,
                Section::Scenario => raw.scenarios.last_mut().expect("open scenario"),
                Section::Override => raw.overrides.last_mut().expect("open override"),
                Section::None => {
                    return Err(SpecError::Syntax {
                        line,
                        msg: format!("key {key:?} before any section header"),
                    })
                }
            };
            slot.push((key, value, line));
        }
        Ok(raw)
    }
}

/// Drops a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<Value, SpecError> {
    let syntax = |msg: String| SpecError::Syntax { line, msg };
    if text.is_empty() {
        return Err(syntax("missing value".into()));
    }
    if let Some(body) = text.strip_prefix('"') {
        let Some(end) = body.find('"') else {
            return Err(syntax(format!("unterminated string {text:?}")));
        };
        if !body[end + 1..].trim().is_empty() {
            return Err(syntax(format!("trailing junk after string {text:?}")));
        }
        return Ok(Value::Str(body[..end].to_string()));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(syntax(format!("unterminated list {text:?}")));
        };
        let mut items = Vec::new();
        for part in body.split(',').map(str::trim) {
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::List(_) => return Err(syntax("nested lists are not supported".into())),
                v => items.push(v),
            }
        }
        return Ok(Value::List(items));
    }
    parse_int(text)
        .map(Value::Int)
        .ok_or_else(|| syntax(format!("cannot parse value {text:?}")))
}

/// Decimal or `0x` hex, with `_` separators.
fn parse_int(text: &str) -> Option<u64> {
    let t = text.trim().replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [campaign]
        name = "mini"
        seeds = "0..4"

        [[scenario]]
        name = "base"
        runner = "cohort"
        queue = 64
    "#;

    #[test]
    fn minimal_spec_parses() {
        let spec = FleetSpec::parse(MINIMAL).expect("parses");
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.total_runs(), 4);
        assert_eq!(spec.scenarios[0].runner, Runner::Cohort);
        assert_eq!(spec.scenarios[0].seeds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn defaults_flow_into_scenarios_and_overrides_win() {
        let spec = FleetSpec::parse(
            r#"
            [campaign]
            name = "ov"
            seeds = [1, 2, 3]

            [defaults]
            queue = 128
            batch = 8

            [[scenario]]
            name = "s"
            runner = "cohort"

            [[override]]
            scenario = "s"
            seed = 2
            queue = 256
            "#,
        )
        .expect("parses");
        let sc = &spec.scenarios[0];
        assert_eq!(sc.base.queue, 128);
        assert_eq!(sc.params_for(1).queue, 128);
        assert_eq!(sc.params_for(2).queue, 256);
        assert_eq!(sc.params_for(2).batch, 8, "override inherits the base");
    }

    #[test]
    fn structured_errors_name_the_problem() {
        let no_name = FleetSpec::parse("[campaign]\nseeds = \"0..2\"").unwrap_err();
        assert_eq!(
            no_name,
            SpecError::MissingKey {
                section: "campaign".into(),
                key: "name".into()
            }
        );

        let bad_runner = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"warp\"",
        )
        .unwrap_err();
        assert!(matches!(bad_runner, SpecError::BadValue { line: 5, .. }));

        let bad_queue = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"chain\"\nqueue = 65",
        )
        .unwrap_err();
        assert_eq!(
            bad_queue,
            SpecError::QueueGranularity {
                scenario: "s".into(),
                queue: 65,
                multiple: 8,
                runner: Runner::Chain,
            }
        );

        let dup = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"cohort\"\n\
             [[scenario]]\nname = \"s\"\nrunner = \"mmio\"",
        )
        .unwrap_err();
        assert_eq!(dup, SpecError::DuplicateScenario { name: "s".into() });
    }

    #[test]
    fn fault_runner_compatibility_is_validated() {
        // kill on a runner with no failover stack.
        let err = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"cohort\"\n\
             faults = \"kill@10000\"",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SpecError::FaultUnsupported { fault: "kill", .. }
        ));

        // kill past the shard pool.
        let err = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"shard\"\n\
             shards = 2\nfaults = \"kill@10000:2\"",
        )
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::EngineTarget {
                scenario: "s".into(),
                engine: 2,
                engines: 2,
            }
        );

        // malformed grammar surfaces the structured fault error.
        let err = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"chaos\"\n\
             faults = \"stall@100\"",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SpecError::Fault {
                err: FaultSpecError::BadArity { .. },
                ..
            }
        ));
    }

    #[test]
    fn sharded_kill_gets_a_spare_engine_automatically() {
        let spec = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"shard\"\n\
             shards = 2\nfaults = \"kill@10000:1\"\nqueue = 64",
        )
        .expect("parses");
        assert_eq!(spec.scenarios[0].base.resolved_engines(), 3);
        // An explicit engine count below shards+spare is rejected.
        let err = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"shard\"\n\
             shards = 2\nfaults = \"kill@10000:1\"\nqueue = 64\nengines = 2",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::BadValue { .. }));
    }

    #[test]
    fn per_seed_fault_variation_is_deterministic_and_bounded() {
        let mut p = RunParams {
            faults: FaultPlan::parse("kill@10000:1").expect("parses"),
            fault_jitter: 5000,
            ..RunParams::default()
        };
        p.shards = 2;
        let a = p.plan_for_seed(7);
        let b = p.plan_for_seed(7);
        assert_eq!(a, b, "same seed, same plan");
        let c = p.plan_for_seed(8);
        let cycle = a.events[0].at_cycle;
        assert!(
            (10_000..=15_000).contains(&cycle),
            "jitter bounded: {cycle}"
        );
        // Different seeds usually move the cycle (not guaranteed for any
        // single pair, but this pair is fixed and known to differ).
        assert_ne!(a.events[0].at_cycle, c.events[0].at_cycle);
    }

    #[test]
    fn override_validation_rejects_unknown_targets_and_seeds() {
        let base = "[campaign]\nname = \"x\"\nseeds = \"0..2\"\n\
                    [[scenario]]\nname = \"s\"\nrunner = \"cohort\"\n";
        let err = FleetSpec::parse(&format!(
            "{base}[[override]]\nscenario = \"t\"\nseed = 0\nqueue = 64"
        ))
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::OverrideTarget {
                scenario: "t".into()
            }
        );

        let err = FleetSpec::parse(&format!(
            "{base}[[override]]\nscenario = \"s\"\nseed = 9\nqueue = 64"
        ))
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::OverrideSeed {
                scenario: "s".into(),
                seed: 9
            }
        );
    }

    #[test]
    fn dram_key_parses_and_flows_into_the_scenario() {
        let spec = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"cohort\"\n\
             queue = 64\ndram = \"channels=1,queue=2,miss=100\"",
        )
        .expect("parses");
        let dram = spec.scenarios[0].base.dram.as_ref().expect("dram set");
        assert_eq!(dram.channels, 1);
        assert_eq!(dram.queue_depth, 2);
        assert_eq!(dram.t_row_miss, 100);
        let (scenario, _) = spec.scenarios[0].base.to_scenario(Runner::Cohort, 0);
        assert_eq!(scenario.soc.dram.as_ref(), Some(dram));

        let spec = FleetSpec::parse(MINIMAL).expect("parses");
        assert!(spec.scenarios[0].base.dram.is_none(), "default stays flat");
    }

    #[test]
    fn bad_dram_spec_is_rejected_at_load_time() {
        let err = FleetSpec::parse(
            "[campaign]\nname = \"x\"\n[[scenario]]\nname = \"s\"\nrunner = \"cohort\"\n\
             queue = 64\ndram = \"warp=9\"",
        )
        .unwrap_err();
        assert!(
            matches!(err, SpecError::BadValue { line: 7, ref key, .. } if key == "dram"),
            "got {err:?}"
        );
    }

    #[test]
    fn comments_hex_and_inclusive_ranges_parse() {
        let spec = FleetSpec::parse(
            "# top comment\n[campaign]\nname = \"c\" # trailing\nseeds = \"0x10..=0x12\"\n\
             [[scenario]]\nname = \"s\"\nrunner = \"cohort\"\nqueue = 1_024",
        )
        .expect("parses");
        assert_eq!(spec.scenarios[0].seeds, vec![16, 17, 18]);
        assert_eq!(spec.scenarios[0].base.queue, 1024);
    }
}
