//! Benchmark tuning parameters (paper Table 2).

use cohort::scenarios::Workload;

/// Queue sizes swept on the x-axes of Figs. 8-11.
pub const QUEUE_SIZES: [u64; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Queue sizes reported in Table 3 (the paper's header lists "4" for the
/// first column, which from the figures is the 64-element point).
pub const TABLE3_SIZES: [u64; 8] = QUEUE_SIZES;

/// Batching factors swept for the SHA benchmark (Fig. 8: 8..64; "Cohort
/// starts at a batch size of 8 elements to reflect one SHA input of 512
/// bits").
pub const SHA_BATCHES: [u64; 4] = [8, 16, 32, 64];

/// Batching factors swept for the AES benchmark (Fig. 9: 2..64).
pub const AES_BATCHES: [u64; 6] = [2, 4, 8, 16, 32, 64];

/// The batch factor used for the headline speedups and IPC figures.
pub const PEAK_BATCH: u64 = 64;

/// DMA granularity (bytes).
pub const DMA_GRANULARITY: u64 = 256;

/// Shard counts swept in the scaling figure.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Queue size for the scaling figure: large enough that per-shard engine
/// work dominates the serial registration + merge-pop floor.
pub const SHARD_QUEUE: u64 = 2048;

/// Shard counts swept in the DRAM-contention scaling figure
/// (`results/scaling_dram.md`): twice the flat sweep, because the point
/// of that figure is where scaling *stops*, and the knee sits past 4.
pub const DRAM_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Queue size for the DRAM-contention scaling sweep: a longer stream than
/// [`SHARD_QUEUE`] so the 8-shard runs still spend most of their cycles
/// in steady state rather than ramp-up/merge.
pub const DRAM_SHARD_QUEUE: u64 = 8192;

/// The contended memory system behind `results/scaling_dram.md`: a single
/// channel with a 2-deep queue and slow row misses, 3 directory MSHRs and
/// a 1-message/cycle NoC ejection width. Deliberately starved so the
/// bandwidth knee lands inside the 1..8-shard sweep; the uncontended
/// [`cohort_sim::dram::DramConfig::default`] spec needs far more shards
/// to saturate.
pub const DRAM_SWEEP_SPEC: &str = "channels=1,queue=2,miss=100,mshrs=3,ejection=1";

/// Smallest batch of each workload (the "W/ Batching" baseline in Table 3).
pub fn min_batch(wl: Workload) -> u64 {
    match wl {
        Workload::Sha => SHA_BATCHES[0],
        Workload::Aes => AES_BATCHES[0],
    }
}

/// Renders Table 2.
pub fn table2_markdown() -> String {
    let mut s = String::new();
    s.push_str("| Parameter | Value |\n|---|---|\n");
    s.push_str("| Accelerators of interest | AES, SHA |\n");
    s.push_str("| Communication modes | Cohort, MMIO, DMA |\n");
    s.push_str(&format!(
        "| Min/Max queue size | {}/{} elements |\n",
        QUEUE_SIZES[0],
        QUEUE_SIZES[QUEUE_SIZES.len() - 1]
    ));
    s.push_str(&format!(
        "| Min/Max batching factor | {}/{} elements |\n",
        AES_BATCHES[0],
        AES_BATCHES[AES_BATCHES.len() - 1]
    ));
    s.push_str(&format!(
        "| Baseline DMA granularity | {DMA_GRANULARITY} Bytes |\n"
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_table2() {
        assert_eq!(QUEUE_SIZES[0], 64);
        assert_eq!(*QUEUE_SIZES.last().unwrap(), 8192);
        assert_eq!(AES_BATCHES[0], 2);
        assert_eq!(*SHA_BATCHES.last().unwrap(), 64);
        assert_eq!(DMA_GRANULARITY, 256);
    }

    #[test]
    fn table2_mentions_all_parameters() {
        let t = table2_markdown();
        assert!(t.contains("64/8192"));
        assert!(t.contains("2/64"));
        assert!(t.contains("256 Bytes"));
    }
}
