//! An io_uring-style asynchronous interface over the native runtime.
//!
//! The paper's §7 sketches integrating Cohort with Linux's `io_uring` to
//! get "a rich runtime for managing accelerators". [`CohortRing`] realises
//! that shape natively: a **submission queue** of buffer-sized jobs and a
//! **completion queue** of results, both ordinary SPSC rings, with the
//! accelerator where the kernel worker pool would be. Submissions never
//! block the submitter (they fail fast when the ring is full, like
//! `io_uring_enter` with a full SQ), completions can be polled or awaited,
//! and `user_data` tags flow through untouched.

use crate::native::push_blocking;
use cohort_accel::ratchet::Ratchet;
use cohort_accel::Accelerator;
use cohort_queue::{spsc_channel, Consumer, Producer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A submission queue entry: one buffer-in/buffer-out job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sqe {
    /// Caller tag, returned untouched in the matching [`Cqe`].
    pub user_data: u64,
    /// Input bytes. If the length is not a multiple of the accelerator's
    /// input block, the final block is zero padded.
    pub payload: Vec<u8>,
}

/// A completion queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cqe {
    /// The submitter's tag.
    pub user_data: u64,
    /// All output bytes the accelerator produced for this job (including
    /// its end-of-stream `finish()` output).
    pub result: Vec<u8>,
}

/// Error returned when the submission queue is full; gives the entry back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingFull(pub Sqe);

impl std::fmt::Display for RingFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("submission queue is full")
    }
}

impl std::error::Error for RingFull {}

/// The asynchronous accelerator ring. See module docs.
///
/// # Example
/// ```
/// use cohort::ring::{CohortRing, Sqe};
/// use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
///
/// let mut ring = CohortRing::new(Box::new(Sha256Accel::new()), None, 8);
/// ring.submit(Sqe { user_data: 7, payload: vec![0xab; 64] }).unwrap();
/// let cqe = ring.wait_complete();
/// assert_eq!(cqe.user_data, 7);
/// assert_eq!(cqe.result, sha256_raw_block(&[0xab; 64]).to_vec());
/// ring.shutdown();
/// ```
#[derive(Debug)]
pub struct CohortRing {
    sq: Producer<Sqe>,
    cq: Consumer<Cqe>,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<u64>>,
    submitted: u64,
    completed: u64,
}

impl CohortRing {
    /// Creates a ring of `depth` entries around `accel`, configured with
    /// the optional CSR buffer before any job runs.
    pub fn new(mut accel: Box<dyn Accelerator>, csr: Option<Vec<u8>>, depth: usize) -> Self {
        let (sq, mut sq_rx) = spsc_channel::<Sqe>(depth.max(1));
        let (mut cq_tx, cq) = spsc_channel::<Cqe>(depth.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_w = Arc::clone(&stop);
        let worker = std::thread::Builder::new()
            .name(format!("cohort-ring-{}", accel.descriptor().name))
            .spawn(move || {
                if let Some(csr) = csr {
                    accel.configure(&csr).expect("CSR rejected");
                }
                let block = accel.descriptor().input_block_bytes;
                let mut jobs = 0u64;
                loop {
                    if let Some(sqe) = sq_rx.pop() {
                        accel.reset();
                        let mut ratchet = Ratchet::new(block);
                        ratchet.push_bytes(&sqe.payload);
                        let mut result = Vec::new();
                        while let Some(b) = ratchet.pop_block() {
                            result.extend(accel.process_block(&b));
                        }
                        if let Some(tail) = ratchet.flush_padded() {
                            result.extend(accel.process_block(&tail));
                        }
                        result.extend(accel.finish());
                        jobs += 1;
                        push_blocking(
                            &mut cq_tx,
                            Cqe {
                                user_data: sqe.user_data,
                                result,
                            },
                        );
                    } else if stop_w.load(Ordering::Acquire) {
                        return jobs;
                    } else {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                }
            })
            .expect("spawn ring worker");
        Self {
            sq,
            cq,
            stop,
            worker: Some(worker),
            submitted: 0,
            completed: 0,
        }
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    /// Returns [`RingFull`] when the submission queue has no room.
    pub fn submit(&mut self, sqe: Sqe) -> Result<(), RingFull> {
        match self.sq.push(sqe) {
            Ok(()) => {
                self.submitted += 1;
                Ok(())
            }
            Err(e) => Err(RingFull(e.0)),
        }
    }

    /// Polls the completion queue.
    pub fn try_complete(&mut self) -> Option<Cqe> {
        let c = self.cq.pop();
        if c.is_some() {
            self.completed += 1;
        }
        c
    }

    /// Blocks (spinning) until a completion arrives.
    ///
    /// # Panics
    /// Panics if there is nothing in flight — that wait could never end.
    pub fn wait_complete(&mut self) -> Cqe {
        assert!(self.in_flight() > 0, "wait_complete with nothing in flight");
        let mut spins = 0u32;
        loop {
            if let Some(c) = self.try_complete() {
                return c;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Jobs submitted but not yet reaped.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.completed
    }

    /// Drains in-flight jobs and stops the worker; returns the number of
    /// jobs it processed.
    pub fn shutdown(mut self) -> u64 {
        // Reap outstanding completions so the worker can always make
        // progress pushing into the CQ.
        while self.in_flight() > 0 {
            let _ = self.wait_complete();
        }
        self.stop.store(true, Ordering::Release);
        self.worker
            .take()
            .expect("worker present")
            .join()
            .expect("ring worker panicked")
    }
}

impl Drop for CohortRing {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(w) = self.worker.take() {
            // Keep reaping so a worker mid-push into a full CQ can always
            // finish, then join.
            loop {
                while self.cq.pop().is_some() {}
                if w.is_finished() {
                    let _ = w.join();
                    break;
                }
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_accel::aes128::{Aes128, Aes128Accel};
    use cohort_accel::nullfifo::NullFifo;
    use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};

    #[test]
    fn tags_flow_through_in_order() {
        let mut ring = CohortRing::new(Box::new(NullFifo::new()), None, 16);
        for tag in 0..8u64 {
            ring.submit(Sqe {
                user_data: tag,
                payload: vec![tag as u8; 8],
            })
            .unwrap();
        }
        for tag in 0..8u64 {
            let c = ring.wait_complete();
            assert_eq!(c.user_data, tag);
            assert_eq!(c.result, vec![tag as u8; 8]);
        }
        assert_eq!(ring.shutdown(), 8);
    }

    #[test]
    fn multi_block_sha_job() {
        let mut ring = CohortRing::new(Box::new(Sha256Accel::new()), None, 4);
        let payload = vec![0x11u8; 192]; // three blocks
        ring.submit(Sqe {
            user_data: 1,
            payload: payload.clone(),
        })
        .unwrap();
        let c = ring.wait_complete();
        let mut expect = Vec::new();
        for b in payload.chunks_exact(64) {
            expect.extend_from_slice(&sha256_raw_block(b.try_into().unwrap()));
        }
        assert_eq!(c.result, expect);
        ring.shutdown();
    }

    #[test]
    fn partial_final_block_is_zero_padded() {
        let mut ring = CohortRing::new(Box::new(Sha256Accel::new()), None, 4);
        ring.submit(Sqe {
            user_data: 2,
            payload: vec![0x22; 70],
        })
        .unwrap();
        let c = ring.wait_complete();
        let b1 = [0x22u8; 64];
        let mut b2 = [0u8; 64];
        b2[..6].fill(0x22);
        let mut expect = sha256_raw_block(&b1).to_vec();
        expect.extend_from_slice(&sha256_raw_block(&b2));
        assert_eq!(c.result, expect);
        ring.shutdown();
    }

    #[test]
    fn ring_full_fails_fast() {
        let mut ring = CohortRing::new(Box::new(Sha256Accel::new()), None, 1);
        // Saturate: with depth 1, at most a couple of jobs fit in SQ+CQ.
        let mut accepted = 0;
        let mut rejected = 0;
        for tag in 0..50u64 {
            match ring.submit(Sqe {
                user_data: tag,
                payload: vec![0; 64],
            }) {
                Ok(()) => accepted += 1,
                Err(RingFull(_)) => rejected += 1,
            }
        }
        assert!(rejected > 0, "a depth-1 ring must reject a 50-burst");
        assert!(accepted > 0);
        ring.shutdown();
    }

    #[test]
    fn aes_ring_with_csr() {
        let key = *b"ring mode aes k!";
        let mut ring = CohortRing::new(Box::new(Aes128Accel::new()), Some(key.to_vec()), 8);
        ring.submit(Sqe {
            user_data: 9,
            payload: vec![0x33; 32],
        })
        .unwrap();
        let c = ring.wait_complete();
        let aes = Aes128::new(&key);
        let mut expect = Vec::new();
        for b in [[0x33u8; 16]; 2] {
            expect.extend_from_slice(&aes.encrypt_block(&b));
        }
        assert_eq!(c.result, expect);
        ring.shutdown();
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let mut ring = CohortRing::new(Box::new(NullFifo::new()), None, 2);
        ring.submit(Sqe {
            user_data: 0,
            payload: vec![1; 8],
        })
        .unwrap();
        drop(ring); // must not deadlock
    }
}
