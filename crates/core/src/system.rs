//! Simulated SoC assembly: directory + cores + Cohort engines + MAPLE.
//!
//! Mirrors the paper's four-tile FPGA prototype (Fig. 2): Ariane cores and
//! accelerator tiles around a shared L2/directory, with the OS structures
//! (frames, address space, page tables) built in guest memory.

use cohort_engine::CohortEngine;
use cohort_maple::MapleUnit;
use cohort_os::addrspace::{AddressSpace, MapPolicy};
use cohort_os::driver::regs;
use cohort_os::frame::FrameAllocator;
use cohort_os::CohortDriver;
use cohort_queue::QueueLayout;
use cohort_sim::component::{CompId, TileCoord};
use cohort_sim::config::SocConfig;
use cohort_sim::core::InOrderCore;
use cohort_sim::directory::Directory;
use cohort_sim::faultinject::FaultInjector;
use cohort_sim::program::Program;
use cohort_sim::soc::Soc;

/// MMIO base of the first Cohort engine's register bank.
pub const ENGINE_MMIO_BASE: u64 = 0x1000_0000;
/// Stride between successive engines' register banks.
pub const ENGINE_MMIO_STRIDE: u64 = 0x1_0000;
/// MMIO base of the MAPLE unit's register bank.
pub const MAPLE_MMIO_BASE: u64 = 0x1100_0000;
/// Interrupt number of the first Cohort engine (engine `i` uses `IRQ + i`).
pub const COHORT_IRQ: u32 = 7;
/// Guest DRAM managed by the frame allocator.
pub const DRAM_BASE: u64 = 0x8000_0000;
/// End of guest DRAM.
pub const DRAM_END: u64 = 0xc000_0000;

/// A simulated Cohort SoC under construction / in operation.
pub struct SimSystem {
    /// The simulated SoC.
    pub soc: Soc,
    /// Directory/L2 component id.
    pub dir: CompId,
    /// The benchmark core's id.
    pub core: CompId,
    /// Cohort engine ids, in registration order.
    pub engines: Vec<CompId>,
    /// The MAPLE baseline unit, if built.
    pub maple: Option<CompId>,
    /// Additional (interference) cores.
    pub extra_cores: Vec<CompId>,
    /// The fault injector, when the config carries a non-empty plan.
    pub injector: Option<CompId>,
    /// Physical frame allocator (guest DRAM).
    pub frames: FrameAllocator,
    /// The benchmark process's address space.
    pub space: AddressSpace,
    /// Drivers, one per engine.
    pub drivers: Vec<CohortDriver>,
}

impl std::fmt::Debug for SimSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSystem")
            .field("engines", &self.engines.len())
            .field("maple", &self.maple.is_some())
            .finish()
    }
}

/// What accelerator-hosting hardware to instantiate.
#[derive(Default)]
pub struct SystemSpec {
    /// SoC configuration.
    pub cfg: SocConfig,
    /// Memory mapping policy for the benchmark process.
    pub policy: MapPolicy,
    /// Accelerators hosted behind Cohort engines (each gets its own tile,
    /// register bank and interrupt).
    pub engine_accels: Vec<Box<dyn cohort_accel::Accelerator>>,
    /// Accelerator hosted behind the MAPLE baseline unit, if any.
    pub maple_accel: Option<Box<dyn cohort_accel::Accelerator>>,
    /// Programs for additional cores (the platform's second Ariane, used
    /// for interference studies). They share the benchmark address space.
    pub extra_core_programs: Vec<Program>,
}

impl SimSystem {
    /// Builds the SoC: directory at (0,0), the benchmark core at (0,1),
    /// Cohort engines at (1,0), (1,1), ... and MAPLE at (1,1) or beyond.
    pub fn build(spec: SystemSpec, program: Program) -> Self {
        let SystemSpec {
            cfg,
            policy,
            engine_accels,
            maple_accel,
            extra_core_programs,
        } = spec;
        let mut soc = Soc::new(cfg.clone());
        let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));

        let mut frames = FrameAllocator::new(DRAM_BASE, DRAM_END);
        let space = AddressSpace::new(&mut frames, policy);

        let mut core_model = InOrderCore::new(dir, &cfg, program);
        core_model.set_translator(Box::new(space.translator()));
        let core = soc.add_component(TileCoord::new(0, 1), Box::new(core_model));

        let mut engines = Vec::new();
        let mut drivers = Vec::new();
        for (i, accel) in engine_accels.into_iter().enumerate() {
            let mmio = ENGINE_MMIO_BASE + (i as u64) * ENGINE_MMIO_STRIDE;
            let irq = COHORT_IRQ + i as u32;
            let mut engine = CohortEngine::new(dir, &cfg, mmio, core, irq, accel);
            engine.set_fault_state(soc.fault_state().clone());
            engine.set_engine_index(i as u64);
            let tile = TileCoord::new(1, i as u16);
            let id = soc.add_component(tile, Box::new(engine));
            soc.map_mmio(mmio..mmio + regs::BANK_BYTES, id);
            engines.push(id);
            drivers.push(CohortDriver::new(mmio, irq));
        }

        let mut extra_cores = Vec::new();
        for (i, p) in extra_core_programs.into_iter().enumerate() {
            let mut c = InOrderCore::new(dir, &cfg, p);
            c.set_translator(Box::new(space.translator()));
            extra_cores.push(soc.add_component(TileCoord::new(0, 2 + i as u16), Box::new(c)));
        }

        // Fault injector rides on its own tile so its MMIO pokes traverse
        // the NoC like any other agent's. Descriptor corruption targets
        // engine 0's IN_BASE_VA register with a misaligned garbage value —
        // the hardened engine must reject it, not wedge on it.
        let injector = (!cfg.faults.is_empty()).then(|| {
            let mut inj = FaultInjector::new(&cfg.faults, soc.fault_state().clone());
            inj.set_tlb_flush_pa(ENGINE_MMIO_BASE + regs::TLB_FLUSH);
            inj.set_corrupt_writes(vec![(ENGINE_MMIO_BASE + regs::IN_BASE_VA, 0x1234_5677)]);
            soc.add_component(TileCoord::new(2, 0), Box::new(inj))
        });

        let maple = maple_accel.map(|accel| {
            let mut unit = MapleUnit::new(dir, &cfg, MAPLE_MMIO_BASE, accel);
            unit.set_fault_state(soc.fault_state().clone());
            let id = soc.add_component(TileCoord::new(1, 1), Box::new(unit));
            soc.map_mmio(
                MAPLE_MMIO_BASE..MAPLE_MMIO_BASE + cohort_maple::regs::BANK_BYTES,
                id,
            );
            id
        });

        Self {
            soc,
            dir,
            core,
            engines,
            maple,
            extra_cores,
            injector,
            frames,
            space,
            drivers,
        }
    }

    /// Allocates a standard-layout queue in the benchmark process's heap
    /// (cache-line aligned; `malloc`-style, paper §4.2.4). The requested
    /// length is rounded up to a power of two — the capacity the hardened
    /// engine's descriptor validation accepts.
    pub fn alloc_queue(&mut self, element_bytes: u32, length: u32) -> QueueLayout {
        let length = length.next_power_of_two();
        let bytes = QueueLayout::standard(0, element_bytes, length).region_bytes;
        let va = self
            .space
            .malloc(&mut self.soc.mem, &mut self.frames, bytes, 64);
        QueueLayout::standard(va, element_bytes, length)
    }

    /// Allocates a plain buffer in the heap, returning its VA.
    pub fn alloc_buffer(&mut self, bytes: u64, align: u64) -> u64 {
        self.space
            .malloc(&mut self.soc.mem, &mut self.frames, bytes, align)
    }

    /// Host-side write through the guest's page tables (used to prepare
    /// CSR buffers and reference data before the run).
    ///
    /// # Panics
    /// Panics if `va` is unmapped.
    pub fn write_guest(&mut self, va: u64, data: &[u8]) {
        // Writes may cross page boundaries; translate page by page.
        let mut off = 0usize;
        while off < data.len() {
            let cur = va + off as u64;
            let pa = self
                .space
                .translate(&self.soc.mem, cur)
                .unwrap_or_else(|| panic!("write_guest: unmapped va {cur:#x}"));
            let in_page = (4096 - (cur % 4096)) as usize;
            let n = in_page.min(data.len() - off);
            self.soc.mem.write_bytes(pa, &data[off..off + n]);
            off += n;
        }
    }

    /// Host-side read through the guest's page tables.
    ///
    /// # Panics
    /// Panics if `va` is unmapped.
    pub fn read_guest(&self, va: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut off = 0usize;
        while off < len {
            let cur = va + off as u64;
            let pa = self
                .space
                .translate(&self.soc.mem, cur)
                .unwrap_or_else(|| panic!("read_guest: unmapped va {cur:#x}"));
            let in_page = (4096 - (cur % 4096)) as usize;
            let n = in_page.min(len - off);
            self.soc.mem.read_bytes(pa, &mut out[off..off + n]);
            off += n;
        }
        out
    }

    /// Immutable access to the benchmark core.
    pub fn core(&self) -> &InOrderCore {
        self.soc
            .component::<InOrderCore>(self.core)
            .expect("core present")
    }

    /// Immutable access to engine `i`.
    pub fn engine(&self, i: usize) -> &CohortEngine {
        self.soc
            .component::<CohortEngine>(self.engines[i])
            .expect("engine present")
    }

    /// Immutable access to the MAPLE unit.
    pub fn maple_unit(&self) -> &MapleUnit {
        self.soc
            .component::<MapleUnit>(self.maple.expect("maple built"))
            .expect("maple present")
    }
}
