//! The paper's benchmark scenarios (§5.3) as simulated programs.
//!
//! Each scenario assembles a [`crate::system::SimSystem`], generates a
//! deterministic input stream, builds the core program for one of the three
//! communication APIs — Cohort, MMIO, coherent DMA — runs to completion and
//! verifies the popped results against a host-side reference computation.
//!
//! Benchmark structure follows §5.3 exactly: "to hash 1 block of text we
//! push 64 bits of data 8 times and fetch the corresponding hash with 4
//! pops. For AES, there are 2 pushes and 2 pops ... we encapsulate these
//! movements into batches and run applications until queue size is
//! reached."

use crate::system::{SimSystem, SystemSpec, MAPLE_MMIO_BASE};
use cohort_accel::aes128::{Aes128, Aes128Accel};
use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
use cohort_maple::regs as maple_regs;
use cohort_os::addrspace::MapPolicy;
use cohort_os::driver::{
    fault_in, swap_store, FailoverConfig, Placement, ProgressProbe, ShardError, ShardPool,
    SoftwareFallback,
};
use cohort_os::sv39::PAGE_BYTES;
use cohort_os::CohortDriver;
use cohort_queue::{QueueLayout, SeqMerge};
use cohort_sim::config::SocConfig;
use cohort_sim::core::InOrderCore;
use cohort_sim::faultinject::{splitmix64, FaultInjector, FaultKind, FaultPlan, StormHook};
use cohort_sim::program::{Op, Program};
use cohort_sim::stats::HistogramSummary;
use std::sync::Arc;

/// The two accelerators of interest (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// SHA-256: 8 pushes, 4 pops per 512-bit block, 66-cycle latency.
    Sha,
    /// AES-128: 2 pushes, 2 pops per 128-bit block, 41-cycle latency,
    /// key via CSR.
    Aes,
}

/// The AES benchmark key (any fixed key; delivered through the CSR path).
pub const AES_KEY: [u8; 16] = *b"cohort-aes-key!!";

impl Workload {
    /// Instantiates the accelerator.
    pub fn make_accel(&self) -> Box<dyn cohort_accel::Accelerator> {
        match self {
            Workload::Sha => Box::new(Sha256Accel::new()),
            Workload::Aes => Box::new(Aes128Accel::new()),
        }
    }

    /// CSR configuration bytes, if the workload needs them.
    pub fn csr(&self) -> Option<Vec<u8>> {
        match self {
            Workload::Sha => None,
            Workload::Aes => Some(AES_KEY.to_vec()),
        }
    }

    /// 64-bit words pushed per accelerator block.
    pub fn words_in_per_block(&self) -> u64 {
        match self {
            Workload::Sha => 8,
            Workload::Aes => 2,
        }
    }

    /// 64-bit words popped per accelerator block.
    pub fn words_out_per_block(&self) -> u64 {
        match self {
            Workload::Sha => 4,
            Workload::Aes => 2,
        }
    }

    /// Host-side reference computation of the output word stream.
    pub fn reference_outputs(&self, input: &[u64]) -> Vec<u64> {
        let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut out = Vec::new();
        match self {
            Workload::Sha => {
                for block in bytes.chunks_exact(64) {
                    out.extend_from_slice(&sha256_raw_block(block.try_into().expect("64B")));
                }
            }
            Workload::Aes => {
                let aes = Aes128::new(&AES_KEY);
                for block in bytes.chunks_exact(16) {
                    out.extend_from_slice(&aes.encrypt_block(block.try_into().expect("16B")));
                }
            }
        }
        out.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8B")))
            .collect()
    }
}

/// Cost constants for the software sides of the three APIs. Loop-overhead
/// values model index arithmetic and branches; `dma_api_alu` models the
/// per-block "special API functions" of the coherent-DMA baseline (§5.3) —
/// the paper does not publish this software cost, so it is calibrated to
/// reproduce the paper's DMA/MMIO ratio (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineCosts {
    /// ALU instructions per push-loop iteration.
    pub push_loop_alu: u32,
    /// ALU instructions per pop-loop iteration.
    pub pop_loop_alu: u32,
    /// ALU instructions around each MMIO access.
    pub mmio_loop_alu: u32,
    /// DMA granularity in bytes (Table 2: 256).
    pub dma_block_bytes: u64,
    /// Per-DMA-block software API cost in instructions (calibrated).
    pub dma_api_alu: u32,
}

impl Default for BaselineCosts {
    fn default() -> Self {
        Self {
            push_loop_alu: 2,
            pop_loop_alu: 2,
            mmio_loop_alu: 10,
            dma_block_bytes: 256,
            dma_api_alu: 9000,
        }
    }
}

/// Full configuration of one benchmark run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which accelerator.
    pub workload: Workload,
    /// Total input elements pushed == input queue length (Table 2:
    /// 64..8192).
    pub queue_size: u64,
    /// Pointer-update batching factor (Table 2: 2..64).
    pub batch: u64,
    /// SoC configuration.
    pub soc: SocConfig,
    /// Page mapping policy.
    pub policy: MapPolicy,
    /// RCM backoff window in cycles.
    pub backoff: u64,
    /// Input data seed.
    pub seed: u64,
    /// Software cost constants.
    pub costs: BaselineCosts,
    /// When true, the SoC's structured event trace is enabled for the run
    /// and the Chrome `trace_event` JSON lands in [`RunResult::trace_json`].
    pub trace: bool,
    /// Engine forward-progress watchdog budget in cycles (0 = disabled;
    /// [`run_cohort_chaos`] substitutes a default when left at 0).
    pub watchdog: u64,
}

impl Scenario {
    /// A scenario with default platform parameters.
    pub fn new(workload: Workload, queue_size: u64, batch: u64) -> Self {
        Self {
            workload,
            queue_size,
            batch: batch.max(1),
            soc: SocConfig::default(),
            policy: MapPolicy::Eager,
            backoff: 700,
            seed: 0x5eed,
            costs: BaselineCosts::default(),
            trace: false,
            watchdog: 0,
        }
    }

    /// Deterministic input words (splitmix64 over the seed).
    pub fn input_words(&self) -> Vec<u64> {
        let mut state = self.seed;
        (0..self.queue_size)
            .map(|_| splitmix64(&mut state))
            .collect()
    }

    /// Output element count for this input size.
    pub fn output_words(&self) -> u64 {
        self.queue_size * self.workload.words_out_per_block() / self.workload.words_in_per_block()
    }
}

/// The outcome of one simulated benchmark run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// End-to-end program latency in cycles (what Figs. 8/9 plot).
    pub cycles: u64,
    /// Instructions the benchmark core retired.
    pub instret: u64,
    /// The output words the core observed.
    pub recorded: Vec<u64>,
    /// True if `recorded` matches the host-side reference — every run is
    /// functionally verified end to end.
    pub verified: bool,
    /// Named counters gathered from all components.
    pub counters: Vec<(String, Vec<(String, u64)>)>,
    /// Histogram summaries from the stats registry under their scoped
    /// names (`engine#0.in_queue_occupancy`, …), so callers can assert on
    /// percentiles without parsing [`RunResult::stats_json`].
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Stats-registry snapshot (counters + histogram summaries) as JSON.
    pub stats_json: String,
    /// Order-sensitive checksum over the run's observable payload (final
    /// cycle plus every recorded word). This is the value the determinism
    /// contract pins down: for a given scenario and seed it is
    /// bit-identical at any `SocConfig::threads` setting and any
    /// component registration order.
    pub checksum: u64,
    /// Chrome `trace_event` JSON, present when the scenario enabled
    /// tracing. Loadable in Perfetto / `chrome://tracing`.
    pub trace_json: Option<String>,
    /// Cycles the step kernel actually executed (and so paid the commit
    /// barrier for). With `Lookahead::Force1` this equals [`Self::cycles`];
    /// under `Auto` the difference is covered by [`Self::ff_cycles`].
    /// Host-side kernel telemetry: excluded from `stats_json` and
    /// `checksum` by construction, so it may vary freely with the batching
    /// mode while the simulated results stay bit-identical.
    pub barrier_activations: u64,
    /// Cycles the conservative lookahead proved no-ops and skipped.
    pub ff_cycles: u64,
}

impl RunResult {
    /// Instructions per cycle of the benchmark core (§6.2).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instret as f64 / self.cycles as f64
        }
    }

    /// Looks up one counter by component prefix and name.
    pub fn counter(&self, comp_prefix: &str, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(c, _)| c.starts_with(comp_prefix))
            .and_then(|(_, list)| list.iter().find(|(n, _)| n == name).map(|(_, v)| *v))
    }

    /// Looks up one histogram summary by its scoped registry name.
    pub fn histogram(&self, scoped_name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == scoped_name)
            .map(|(_, h)| h)
    }
}

/// Budget generous enough for the slowest (MMIO, 8192-element) runs.
fn cycle_budget(queue_size: u64) -> u64 {
    20_000_000 + queue_size * 10_000
}

/// Computes [`RunResult::checksum`]: splitmix64-mixed over the final
/// cycle count and the recorded output words, order-sensitive.
fn payload_checksum(cycles: u64, recorded: &[u64]) -> u64 {
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ cycles;
    let mut acc = splitmix64(&mut state);
    for &w in recorded {
        state ^= w;
        acc = acc.rotate_left(7) ^ splitmix64(&mut state);
    }
    acc
}

fn finish_run(mut sys: SimSystem, scenario: &Scenario) -> RunResult {
    sys.soc.set_tracing(scenario.trace);
    let outcome = sys.soc.run(cycle_budget(scenario.queue_size));
    let core = sys.core();
    assert!(
        core.is_done(),
        "benchmark did not complete: quiescent={} cycle={} core={core:?}",
        outcome.quiescent,
        outcome.cycle,
    );
    let recorded = core.recorded().to_vec();
    let expected = scenario.workload.reference_outputs(&scenario.input_words());
    let verified = recorded == expected;
    RunResult {
        cycles: core.core_counters().done_at,
        instret: core.core_counters().instret.get(),
        checksum: payload_checksum(core.core_counters().done_at, &recorded),
        recorded,
        verified,
        counters: sys.soc.all_counters(),
        histograms: sys.soc.stats().histogram_summaries(),
        stats_json: sys.soc.stats_json(),
        barrier_activations: sys.soc.kernel_counter("kernel.barrier_activations"),
        ff_cycles: sys.soc.kernel_counter("kernel.ff_cycles"),
        trace_json: scenario.trace.then(|| sys.soc.trace_json()),
    }
}

/// Runs the Cohort-API benchmark (paper §5.3 "Benchmark Implementation in
/// Cohort"): SPSC queues + `cohort_register`, pushes with batched
/// write-index publication, pops with batched read-index release.
pub fn run_cohort(scenario: &Scenario) -> RunResult {
    let spec = SystemSpec {
        cfg: scenario.soc.clone(),
        policy: scenario.policy,
        engine_accels: vec![scenario.workload.make_accel()],
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());

    let n = scenario.queue_size;
    let m = scenario.output_words();
    let in_q = sys.alloc_queue(8, n as u32);
    let out_q = sys.alloc_queue(8, m.max(1) as u32);
    let csr = scenario.workload.csr().map(|bytes| {
        let va = sys.alloc_buffer(bytes.len() as u64, 64);
        (va, bytes)
    });
    // Under lazy mapping the CSR/queues pages fault on first engine touch;
    // the host still needs to seed the CSR contents, so fault it in now.
    if let Some((va, bytes)) = &csr {
        if scenario.policy == MapPolicy::Lazy {
            let mut space = sys.space.clone();
            let mut va_page = *va & !4095;
            while va_page < va + bytes.len() as u64 {
                if space.translate(&sys.soc.mem, va_page).is_none() {
                    space.handle_fault(&mut sys.soc.mem, &mut sys.frames, va_page);
                }
                va_page += 4096;
            }
        }
        sys.write_guest(*va, bytes);
    }

    let driver = sys.drivers[0].clone();
    let root_pa = sys.space.root_pa();
    let mut program = driver.register_ops(
        root_pa,
        &in_q.descriptor,
        &out_q.descriptor,
        csr.as_ref().map(|(va, b)| (*va, b.len() as u64)),
        scenario.backoff,
    );

    push_pop_body(&mut program, scenario, &in_q, &out_q);
    program.append(driver.unregister_ops());

    install_and_arm(&mut sys, &driver, program);
    finish_run(sys, scenario)
}

/// Installs the program on the core and, for lazy policies, the shared
/// demand-paging machinery (engine interrupt handler + core fault path).
fn install_and_arm(sys: &mut SimSystem, driver: &CohortDriver, program: Program) {
    let vm = CohortDriver::shared_vm(sys.space.clone(), sys.frames.clone());
    let lazy = sys.space.policy() == MapPolicy::Lazy;
    let core_id = sys.core;
    let core = sys
        .soc
        .component_mut::<InOrderCore>(core_id)
        .expect("core present");
    core.load_program(program);
    if lazy {
        driver.install_fault_handler(core, vm);
    }
}

/// How [`run_cohort_sharded`] splits the logical stream and steers the
/// pieces onto engines.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// Number of shards (engines the pool binds). The SoC must be
    /// configured with at least this many engines
    /// ([`SocConfig::engines`]), plus one spare when the fault plan kills
    /// a shard.
    pub shards: usize,
    /// Placement policy.
    pub placement: Placement,
    /// When true, element runs have splitmix64-skewed sizes (mostly
    /// small, occasionally large) instead of uniform ones — the variant
    /// where occupancy-aware placement pulls ahead of round-robin.
    pub skewed: bool,
    /// Extra "LITTLE" cores added to the mesh beyond the shard
    /// producers. Each streams stores through its slice of a 2x-L2
    /// working set — background memory traffic that contends for the
    /// shared cache without participating in the benchmark. The noise
    /// programs are deterministic, so results stay bit-identical for a
    /// given spec at any thread count.
    pub background_cores: usize,
}

impl ShardSpec {
    /// A spec with `shards` shards, round-robin placement, uniform runs.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            placement: Placement::RoundRobin,
            skewed: false,
            background_cores: 0,
        }
    }

    /// Builder-style placement override.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style skew toggle.
    pub fn with_skew(mut self, skewed: bool) -> Self {
        self.skewed = skewed;
        self
    }

    /// Builder-style background ("LITTLE") core count.
    pub fn with_background_cores(mut self, n: usize) -> Self {
        self.background_cores = n;
        self
    }
}

/// The 16-core big.LITTLE-style mesh configuration: one benchmark core
/// and 4 "big" producer cores feed 4 sharded engines, while 11 "LITTLE"
/// cores stream background stores through the shared L2 — 16 in-order
/// cores total, placed on the mesh alongside the directory, the engines
/// and the MAPLE unit. This is the standard many-component workload for
/// the parallel step kernel (`simperf`, the determinism suite and CI all
/// run it).
pub fn mesh16_scenario(queue_size: u64, batch: u64) -> (Scenario, ShardSpec) {
    let mut scenario = Scenario::new(Workload::Aes, queue_size, batch);
    scenario.soc = SocConfig::default().with_engines(4);
    (scenario, ShardSpec::new(4).with_background_cores(11))
}

/// Blocks per element run in the uniform (non-skewed) sharded scenario.
const UNIFORM_CHUNK_BLOCKS: u64 = 4;

/// One contiguous run of accelerator blocks after placement: where its
/// input lands in its shard's input ring and where its output appears in
/// the shard's output ring. The index of the chunk in the plan vector is
/// its global sequence number.
#[derive(Debug, Clone, Copy)]
struct ShardChunk {
    shard: usize,
    in_off: u64,
    in_words: u64,
    out_off: u64,
    out_words: u64,
}

/// Splits the scenario's stream into element runs (sizes in accelerator
/// blocks). Uniform: fixed [`UNIFORM_CHUNK_BLOCKS`]-block runs. Skewed:
/// splitmix64-jittered sizes with every fourth run heavy (8–16 blocks,
/// the rest 1–3) — the I-frame-like periodic burst that is the classic
/// adversarial input for blind round-robin: whenever the period is a
/// multiple of the shard count, every heavy run collides on one engine,
/// while load-aware placement keeps shard totals level.
fn shard_chunk_blocks(scenario: &Scenario, skewed: bool) -> Vec<u64> {
    let total = scenario.queue_size / scenario.workload.words_in_per_block();
    let mut out = Vec::new();
    let mut left = total;
    let mut state = scenario.seed ^ 0x5eed_c0ff_ee01_d00d;
    while left > 0 {
        let blocks = if skewed {
            let z = splitmix64(&mut state);
            if out.len().is_multiple_of(4) {
                8 + z % 9
            } else {
                1 + z % 3
            }
        } else {
            UNIFORM_CHUNK_BLOCKS
        };
        let blocks = blocks.min(left);
        out.push(blocks);
        left -= blocks;
    }
    out
}

/// Runs the multi-engine sharded throughput scenario: one logical stream,
/// split at element-run granularity by a driver-level [`ShardPool`] onto
/// `spec.shards` engines, reassembled in global order by a sequence-tagged
/// merge.
///
/// Faithful to how the paper scales (§6: one software thread per engine),
/// each shard gets a dedicated producer core that streams its assigned
/// runs into the shard's private input ring; the benchmark core registers
/// every engine, then pops all output rings *in global sequence order* —
/// the program realisation of the merge — so `recorded` is the logical
/// stream and latency includes reassembly. Rings are sized for the whole
/// per-shard stream, so producers never block and a dead shard can stall
/// only its own elements.
///
/// Failover composes: when the fault plan fail-stops a shard engine, that
/// shard is armed (watchdog + checkpoint spill) and its queues migrate
/// onto the spare engine `spec.shards` via the PR-3 epoch-fenced path; the
/// merge then drains the spare's output with the digest unchanged.
///
/// # Errors
/// [`ShardError`] when `spec` asks for zero shards or for more shards
/// (plus the failover spare, when a kill fault targets one) than
/// [`SocConfig::engines`] provides.
///
/// # Panics
/// Panics if `queue_size` is not whole accelerator blocks.
pub fn run_cohort_sharded(scenario: &Scenario, spec: &ShardSpec) -> Result<RunResult, ShardError> {
    let wpb_in = scenario.workload.words_in_per_block();
    let wpb_out = scenario.workload.words_out_per_block();
    assert!(
        scenario.queue_size.is_multiple_of(wpb_in),
        "sharded scenario needs whole accelerator blocks"
    );

    let cfg = scenario.soc.clone();
    // A kill fault aimed at a shard engine requires a spare to heal onto.
    let victim = cfg.faults.schedule().iter().find_map(|ev| match ev.kind {
        FaultKind::KillEngine { engine } if (engine as usize) < spec.shards => {
            Some(engine as usize)
        }
        _ => None,
    });
    let spares = usize::from(victim.is_some());

    let spec_sys = SystemSpec {
        cfg,
        policy: scenario.policy,
        engine_accels: (0..scenario.soc.engines)
            .map(|_| scenario.workload.make_accel())
            .collect(),
        extra_core_programs: vec![Program::new(); spec.shards + spec.background_cores],
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec_sys, Program::new());
    let mut pool = ShardPool::bind(&sys.drivers, spec.shards, spares, spec.placement)?;
    let shards = pool.shards();

    // Split, then place every run through the pool (this is where the
    // policies differ), accumulating per-shard ring offsets.
    let mut chunks = Vec::new();
    let mut in_totals = vec![0u64; shards];
    let mut out_totals = vec![0u64; shards];
    for blocks in shard_chunk_blocks(scenario, spec.skewed) {
        let in_words = blocks * wpb_in;
        let out_words = blocks * wpb_out;
        let placed = pool.place(in_words);
        chunks.push(ShardChunk {
            shard: placed.shard,
            in_off: in_totals[placed.shard],
            in_words,
            out_off: out_totals[placed.shard],
            out_words,
        });
        in_totals[placed.shard] += in_words;
        out_totals[placed.shard] += out_words;
    }

    // Per-shard rings sized for the whole per-shard stream: producers
    // never wrap or block, and an outage confines loss to its shard.
    let in_qs: Vec<QueueLayout> = in_totals
        .iter()
        .map(|&w| sys.alloc_queue(8, w.max(1) as u32))
        .collect();
    let out_qs: Vec<QueueLayout> = out_totals
        .iter()
        .map(|&w| sys.alloc_queue(8, w.max(1) as u32))
        .collect();
    let csr = scenario.workload.csr().map(|bytes| {
        let va = sys.alloc_buffer(bytes.len() as u64, 64);
        (va, bytes)
    });
    if let Some((va, bytes)) = &csr {
        if scenario.policy == MapPolicy::Lazy {
            let mut space = sys.space.clone();
            let mut va_page = *va & !4095;
            while va_page < va + bytes.len() as u64 {
                if space.translate(&sys.soc.mem, va_page).is_none() {
                    space.handle_fault(&mut sys.soc.mem, &mut sys.frames, va_page);
                }
                va_page += 4096;
            }
        }
        sys.write_guest(*va, bytes);
    }
    let csr_reg = csr.as_ref().map(|(va, b)| (*va, b.len() as u64));

    // Producer programs: shard `s`'s core streams its runs in shard-FIFO
    // order, publishing the write index every `batch` words and at end of
    // stream. Data stores always precede the index publication (fence) —
    // the data-before-pointer contract, per shard.
    let data = scenario.input_words();
    let costs = scenario.costs;
    let mut producer_progs: Vec<Program> = (0..shards).map(|_| Program::new()).collect();
    let mut pushed = vec![0u64; shards];
    let mut published = vec![0u64; shards];
    let mut data_pos = 0usize;
    for c in &chunks {
        let p = &mut producer_progs[c.shard];
        for w in 0..c.in_words {
            p.push(Op::Alu(costs.push_loop_alu));
            p.push(Op::Store {
                va: in_qs[c.shard].descriptor.element_va(c.in_off + w),
                value: data[data_pos],
            });
            data_pos += 1;
        }
        pushed[c.shard] += c.in_words;
        if pushed[c.shard] - published[c.shard] >= scenario.batch {
            publish_index(p, in_qs[c.shard].descriptor.write_index_va, pushed[c.shard]);
            published[c.shard] = pushed[c.shard];
        }
    }
    for s in 0..shards {
        if published[s] < pushed[s] {
            publish_index(
                &mut producer_progs[s],
                in_qs[s].descriptor.write_index_va,
                pushed[s],
            );
        }
        producer_progs[s].push(Op::Fence);
    }

    // Benchmark-core program: register every shard engine, arm the victim
    // (when a kill is scheduled), then pop in global sequence order — the
    // merge, realised as WaitGe gates against each shard's cumulative
    // output index.
    let root_pa = sys.space.root_pa();
    let watchdog = if scenario.watchdog == 0 {
        CHAOS_DEFAULT_WATCHDOG
    } else {
        scenario.watchdog
    };
    let mut program = Program::new();
    for s in 0..shards {
        program.append(pool.driver(s).register_ops(
            root_pa,
            &in_qs[s].descriptor,
            &out_qs[s].descriptor,
            csr_reg,
            scenario.backoff,
        ));
    }

    let mut spill_pa = 0u64;
    if let Some(v) = victim {
        // Checkpoint spill page for the victim's datapath residue.
        let spill_va = sys.alloc_buffer(PAGE_BYTES, PAGE_BYTES);
        if sys.space.translate(&sys.soc.mem, spill_va).is_none() {
            let mut space = sys.space.clone();
            space.handle_fault(&mut sys.soc.mem, &mut sys.frames, spill_va);
        }
        spill_pa = sys
            .space
            .translate(&sys.soc.mem, spill_va)
            .expect("spill page mapped");
        // Only the victim is watchdogged: healthy shards legitimately sit
        // in benign Waiting states whenever their producer is between
        // batches.
        program.append(pool.driver(v).watchdog_ops(watchdog));
        program.append(pool.driver(v).spill_ops(spill_pa));
    }

    let mut popped = vec![0u64; shards];
    for c in &chunks {
        let oq = &out_qs[c.shard].descriptor;
        program.push(Op::WaitGe {
            va: oq.write_index_va,
            value: c.out_off + c.out_words,
        });
        for w in 0..c.out_words {
            program.push(Op::Alu(costs.pop_loop_alu));
            program.push(Op::Load {
                va: oq.element_va(c.out_off + w),
                record: true,
            });
        }
        popped[c.shard] = c.out_off + c.out_words;
    }
    for s in 0..shards {
        program.push(Op::Alu(1));
        program.push(Op::Store {
            va: out_qs[s].descriptor.read_index_va,
            value: popped[s],
        });
    }
    program.push(Op::Fence);
    if victim.is_some() {
        program.append(sys.drivers[shards].unregister_ops());
    }
    for s in 0..shards {
        program.append(pool.driver(s).unregister_ops());
    }

    // Load programs, arm demand paging (per engine) and, for a kill plan,
    // the victim's failover orchestrator targeting the spare.
    let lazy = sys.space.policy() == MapPolicy::Lazy;
    let vm = CohortDriver::shared_vm(sys.space.clone(), sys.frames.clone());
    let core_id = sys.core;
    {
        let core = sys
            .soc
            .component_mut::<InOrderCore>(core_id)
            .expect("core present");
        core.load_program(program);
        if lazy {
            for s in 0..shards {
                pool.driver(s).install_fault_handler(core, Arc::clone(&vm));
            }
        }
        if let Some(v) = victim {
            pool.driver(v).install_failover_handler(
                core,
                FailoverConfig {
                    spare: sys.drivers[shards].clone(),
                    vm: Arc::clone(&vm),
                    root_pa,
                    input: in_qs[v].descriptor,
                    output: out_qs[v].descriptor,
                    csr: csr_reg,
                    backoff: scenario.backoff,
                    watchdog,
                    spill_pa,
                },
            );
        }
    }
    for (s, prog) in producer_progs.into_iter().enumerate() {
        let pc = sys.extra_cores[s];
        sys.soc
            .component_mut::<InOrderCore>(pc)
            .expect("producer core present")
            .load_program(prog);
    }

    // Background ("LITTLE") cores: each streams stores through its own
    // slice of a 2x-L2 working set, twice over — cache contention that
    // runs alongside the benchmark without feeding it.
    if spec.background_cores > 0 {
        let footprint = 2 * sys.soc.config().l2.capacity_bytes;
        let buf = sys.alloc_buffer(footprint, 64);
        let lines = footprint / 64;
        let span = lines / spec.background_cores as u64;
        for b in 0..spec.background_cores {
            let mut noise = Program::new();
            let first = b as u64 * span;
            for pass in 0..2u64 {
                for line in first..first + span.max(1) {
                    noise.push(Op::Store {
                        va: buf + (line % lines) * 64,
                        value: (b as u64) << 32 | pass << 24 | line,
                    });
                }
            }
            noise.push(Op::Fence);
            let bc = sys.extra_cores[spec.shards + b];
            sys.soc
                .component_mut::<InOrderCore>(bc)
                .expect("background core present")
                .load_program(noise);
        }
    }

    // Under lazy mapping the producer and background cores store straight
    // into lazily-mapped pages too; without a demand-paging hook their
    // first touch of an unmapped queue element is a fatal core fault.
    if lazy {
        for &pc in &sys.extra_cores[..spec.shards + spec.background_cores] {
            let hook_vm = Arc::clone(&vm);
            sys.soc
                .component_mut::<InOrderCore>(pc)
                .expect("extra core present")
                .set_fault_hook(Box::new(move |mem, va| {
                    fault_in(mem, &hook_vm, None, va);
                    true
                }));
        }
    }

    Ok(finish_sharded_run(sys, scenario, &chunks, &out_qs, pool))
}

/// Fence + one-ALU index arithmetic + write-index store: the batched
/// publication idiom shared by every producer.
fn publish_index(p: &mut Program, write_index_va: u64, value: u64) {
    p.push(Op::Fence);
    p.push(Op::Alu(1));
    p.push(Op::Store {
        va: write_index_va,
        value,
    });
}

/// Completes a sharded run: simulate, then verify twice over — the
/// benchmark core's in-order pops against the host reference, and an
/// explicitly reassembled copy: per-shard FIFO streams read back from
/// guest memory are fed through the sequence-tagged merge
/// ([`cohort_queue::merge`]) in a worst-case cross-shard interleaving and
/// must reproduce the same logical stream. The pool's occupancy mirror is
/// drained with each merged run and must return to zero.
fn finish_sharded_run(
    mut sys: SimSystem,
    scenario: &Scenario,
    chunks: &[ShardChunk],
    out_qs: &[QueueLayout],
    mut pool: ShardPool,
) -> RunResult {
    sys.soc.set_tracing(scenario.trace);
    let outcome = sys.soc.run(cycle_budget(scenario.queue_size));
    let core = sys.core();
    assert!(
        core.is_done(),
        "sharded benchmark did not complete: quiescent={} cycle={} core={core:?}",
        outcome.quiescent,
        outcome.cycle,
    );
    let recorded = core.recorded().to_vec();
    let expected = scenario.workload.reference_outputs(&scenario.input_words());

    // Reassembly cross-check through the merge structure. Shards race
    // each other in reality; feeding the merge one run per shard in turn
    // exercises maximal cross-shard interleaving while preserving each
    // shard's FIFO order.
    let mut per_shard: Vec<std::collections::VecDeque<(u64, ShardChunk)>> =
        vec![std::collections::VecDeque::new(); out_qs.len()];
    for (seq, c) in chunks.iter().enumerate() {
        per_shard[c.shard].push_back((seq as u64, *c));
    }
    let mut merge = SeqMerge::new();
    let mut merged = Vec::new();
    while per_shard.iter().any(|q| !q.is_empty()) {
        for s in 0..per_shard.len() {
            if let Some((seq, c)) = per_shard[s].pop_front() {
                let words: Vec<u64> = (0..c.out_words)
                    .map(|w| {
                        let va = out_qs[s].descriptor.element_va(c.out_off + w);
                        let bytes = sys.read_guest(va, 8);
                        u64::from_le_bytes(bytes.try_into().expect("8B"))
                    })
                    .collect();
                merge.push(seq, (s, c.in_words, words)).expect("unique seq");
            }
        }
        for (_, (shard, in_words, words)) in merge.drain_ready() {
            pool.complete(shard, in_words);
            merged.extend(words);
        }
    }
    let mirror_drained = (0..pool.shards()).all(|s| pool.occupancy(s) == 0);
    let verified =
        recorded == expected && merged == expected && merge.is_drained() && mirror_drained;

    RunResult {
        cycles: core.core_counters().done_at,
        instret: core.core_counters().instret.get(),
        checksum: payload_checksum(core.core_counters().done_at, &recorded),
        recorded,
        verified,
        counters: sys.soc.all_counters(),
        histograms: sys.soc.stats().histogram_summaries(),
        stats_json: sys.soc.stats_json(),
        barrier_activations: sys.soc.kernel_counter("kernel.barrier_activations"),
        ff_cycles: sys.soc.kernel_counter("kernel.ff_cycles"),
        trace_json: scenario.trace.then(|| sys.soc.trace_json()),
    }
}

/// Default watchdog budget armed by [`run_cohort_chaos`] when the scenario
/// leaves [`Scenario::watchdog`] at 0. Long enough that healthy backoff
/// idling never trips it, short enough that a wedged engine is detected
/// well inside the cycle budget.
pub const CHAOS_DEFAULT_WATCHDOG: u64 = 150_000;

/// Runs the Cohort benchmark under the fault-injection plan carried in
/// `scenario.soc.faults`, with the full recovery stack armed:
///
/// * the engine forward-progress watchdog ([`Scenario::watchdog`], or
///   [`CHAOS_DEFAULT_WATCHDOG`] when 0);
/// * the page-fault interrupt handler with a swap backing store, so
///   storm-evicted pages come back with their contents;
/// * a storm hook that evicts queue data pages round-robin through that
///   swap store;
/// * the error-interrupt handler with bounded retry (2) and a software
///   fallback that recomputes the whole output stream and publishes the
///   final write index — the graceful-degradation contract.
///
/// The run must still record the exact fault-free output: chaos is allowed
/// to cost cycles, never correctness.
pub fn run_cohort_chaos(scenario: &Scenario) -> RunResult {
    let spec = SystemSpec {
        cfg: scenario.soc.clone(),
        policy: scenario.policy,
        engine_accels: vec![scenario.workload.make_accel()],
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());

    let n = scenario.queue_size;
    let m = scenario.output_words();
    let in_q = sys.alloc_queue(8, n as u32);
    let out_q = sys.alloc_queue(8, m.max(1) as u32);
    let csr = scenario.workload.csr().map(|bytes| {
        let va = sys.alloc_buffer(bytes.len() as u64, 64);
        (va, bytes)
    });
    if let Some((va, bytes)) = &csr {
        if scenario.policy == MapPolicy::Lazy {
            let mut space = sys.space.clone();
            let mut va_page = *va & !4095;
            while va_page < va + bytes.len() as u64 {
                if space.translate(&sys.soc.mem, va_page).is_none() {
                    space.handle_fault(&mut sys.soc.mem, &mut sys.frames, va_page);
                }
                va_page += 4096;
            }
        }
        sys.write_guest(*va, bytes);
    }

    let driver = sys.drivers[0].clone();
    let root_pa = sys.space.root_pa();
    let mut program = driver.register_ops(
        root_pa,
        &in_q.descriptor,
        &out_q.descriptor,
        csr.as_ref().map(|(va, b)| (*va, b.len() as u64)),
        scenario.backoff,
    );
    let watchdog = if scenario.watchdog == 0 {
        CHAOS_DEFAULT_WATCHDOG
    } else {
        scenario.watchdog
    };
    program.append(driver.watchdog_ops(watchdog));
    push_pop_body(&mut program, scenario, &in_q, &out_q);
    program.append(driver.unregister_ops());

    // One kernel mm view shared by every recovery path, plus the swap
    // store that keeps storm evictions lossless.
    let vm = CohortDriver::shared_vm(sys.space.clone(), sys.frames.clone());
    let swap = swap_store();

    // Storm hook: evict queue data pages round-robin, parking each page's
    // frame in the swap store so the next fault maps the same frame back
    // in — writes racing the shootdown are never lost (see `SwapStore`).
    if let Some(inj_id) = sys.injector {
        let mut candidates: Vec<u64> = Vec::new();
        for q in [&in_q, &out_q] {
            let d = &q.descriptor;
            let mut page = d.base_va & !(PAGE_BYTES - 1);
            while page < d.base_va + d.data_bytes() {
                candidates.push(page);
                page += PAGE_BYTES;
            }
        }
        let storm_vm = Arc::clone(&vm);
        let storm_swap = swap.clone();
        let mut next = 0usize;
        let hook: StormHook = Box::new(move |mem, pages| {
            let mut evicted = 0u64;
            let mut g = storm_vm.lock().expect("vm lock");
            let (space, _frames) = &mut *g;
            for _ in 0..pages {
                if candidates.is_empty() {
                    break;
                }
                let va = candidates[next % candidates.len()];
                next += 1;
                if let Some(pa) = space.translate(mem, va) {
                    storm_swap
                        .lock()
                        .expect("swap lock")
                        .insert(va, pa & !(PAGE_BYTES - 1));
                    if space.unmap(mem, va) {
                        evicted += 1;
                    }
                }
            }
            evicted
        });
        sys.soc
            .component_mut::<FaultInjector>(inj_id)
            .expect("injector present")
            .set_storm_hook(hook);
    }

    // Software fallback for exhausted retries: the kernel recomputes the
    // entire output stream and publishes the final write index. Recomputing
    // from scratch keeps the path idempotent — partial hardware progress
    // before the failure is simply overwritten.
    let expected = scenario.workload.reference_outputs(&scenario.input_words());
    let fb_vm = Arc::clone(&vm);
    let fb_swap = swap.clone();
    let out_desc = out_q.descriptor;
    let total = expected.len() as u64;
    let fallback: SoftwareFallback = Box::new(move |mem| {
        for (j, &w) in expected.iter().enumerate() {
            let va = out_desc.element_va(j as u64);
            fault_in(mem, &fb_vm, Some(&fb_swap), va);
            let pa = fb_vm
                .lock()
                .expect("vm lock")
                .0
                .translate(mem, va)
                .expect("mapped");
            mem.write_u64(pa, w);
        }
        let wr_va = out_desc.write_index_va;
        fault_in(mem, &fb_vm, Some(&fb_swap), wr_va);
        let pa = fb_vm
            .lock()
            .expect("vm lock")
            .0
            .translate(mem, wr_va)
            .expect("mapped");
        mem.write_u64(pa, total);
    });

    // Forward-progress probe: strictly grows while the engine moves
    // elements, so the error handler can reset its bounded-retry budget
    // after a recovery demonstrably succeeded.
    let ec = sys.engine(0).engine_counters();
    let (consumed, produced, drained) = (
        ec.consumed.clone(),
        ec.produced.clone(),
        ec.drained_elems.clone(),
    );
    let probe: ProgressProbe = Box::new(move || consumed.get() + produced.get() + drained.get());

    let core_id = sys.core;
    let core = sys
        .soc
        .component_mut::<InOrderCore>(core_id)
        .expect("core present");
    core.load_program(program);
    driver.install_fault_handler_with_swap(core, Arc::clone(&vm), swap.clone());
    driver.install_error_handler_with_probe(core, 2, Some(fallback), Some(probe));
    finish_run(sys, scenario)
}

/// Runs the MMIO baseline (§5.1): word-at-a-time, fully blocking accesses,
/// output received before the next block's input ("the core cannot achieve
/// memory-level parallelism").
pub fn run_mmio(scenario: &Scenario) -> RunResult {
    let spec = SystemSpec {
        cfg: scenario.soc.clone(),
        policy: scenario.policy,
        maple_accel: Some(scenario.workload.make_accel()),
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());
    let mut program = Program::new();

    // CSR configuration over MMIO.
    if let Some(csr) = scenario.workload.csr() {
        for chunk in csr.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            program.push(Op::MmioStore {
                pa: MAPLE_MMIO_BASE + maple_regs::CSR_DATA,
                value: u64::from_le_bytes(word),
            });
        }
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::CSR_COMMIT,
            value: csr.len() as u64,
        });
    }

    let data = scenario.input_words();
    let wpb_in = scenario.workload.words_in_per_block() as usize;
    let wpb_out = scenario.workload.words_out_per_block();
    let costs = scenario.costs;
    for block in data.chunks(wpb_in) {
        for &w in block {
            program.push(Op::Alu(costs.mmio_loop_alu));
            program.push(Op::MmioStore {
                pa: MAPLE_MMIO_BASE + maple_regs::PUSH,
                value: w,
            });
        }
        for _ in 0..wpb_out {
            program.push(Op::Alu(costs.mmio_loop_alu));
            program.push(Op::MmioLoad {
                pa: MAPLE_MMIO_BASE + maple_regs::POP,
                record: true,
            });
        }
    }

    install_and_arm_plain(&mut sys, program);
    finish_run(sys, scenario)
}

/// Runs the coherent-DMA baseline (§5.1): the core stages input in memory,
/// then programs MAPLE per 256-byte block (MMIO writes + API software
/// cost) and waits for completion; results are stored coherently and read
/// back at the end.
pub fn run_dma(scenario: &Scenario) -> RunResult {
    let spec = SystemSpec {
        cfg: scenario.soc.clone(),
        policy: scenario.policy,
        maple_accel: Some(scenario.workload.make_accel()),
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());

    let n = scenario.queue_size;
    let m = scenario.output_words();
    let in_va = sys.alloc_buffer(n * 8, 64);
    let out_va = sys.alloc_buffer(m.max(1) * 8, 64);
    let root_pa = sys.space.root_pa();

    let mut program = Program::new();
    program.push(Op::MmioStore {
        pa: MAPLE_MMIO_BASE + maple_regs::DMA_PTROOT,
        value: root_pa,
    });
    if let Some(csr) = scenario.workload.csr() {
        for chunk in csr.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            program.push(Op::MmioStore {
                pa: MAPLE_MMIO_BASE + maple_regs::CSR_DATA,
                value: u64::from_le_bytes(word),
            });
        }
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::CSR_COMMIT,
            value: csr.len() as u64,
        });
    }

    // Stage the input in memory (cached stores, like the Cohort push loop).
    let data = scenario.input_words();
    let costs = scenario.costs;
    for (i, &w) in data.iter().enumerate() {
        program.push(Op::Alu(costs.push_loop_alu));
        program.push(Op::Store {
            va: in_va + (i as u64) * 8,
            value: w,
        });
    }
    program.push(Op::Fence);

    // One programmed transfer per DMA block.
    let block = costs.dma_block_bytes;
    let in_bytes = n * 8;
    let ratio_out = scenario.workload.words_out_per_block() * 8;
    let ratio_in = scenario.workload.words_in_per_block() * 8;
    let mut src_off = 0u64;
    let mut dst_off = 0u64;
    while src_off < in_bytes {
        let len = block.min(in_bytes - src_off);
        program.push(Op::KernelCost {
            cycles: u64::from(costs.dma_api_alu),
            insts: u64::from(costs.dma_api_alu) / 5,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_SRC,
            value: in_va + src_off,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_DST,
            value: out_va + dst_off,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_LEN,
            value: len,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_START,
            value: 1,
        });
        program.push(Op::MmioLoad {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_DONE,
            record: false,
        });
        src_off += len;
        dst_off += len * ratio_out / ratio_in;
    }

    // Read the results back.
    for j in 0..m {
        program.push(Op::Alu(costs.pop_loop_alu));
        program.push(Op::Load {
            va: out_va + j * 8,
            record: true,
        });
    }

    install_and_arm_plain(&mut sys, program);
    finish_run(sys, scenario)
}

/// The coherent-DMA (decoupled access-execute) baseline of [`run_dma`]
/// under the fault plan in `scenario.soc.faults`, hardened for MAPLE
/// faults: every `DMA_DONE` completion word is recorded, and the final
/// outputs are read back from guest memory after the run.
///
/// An injected stall only delays completion, so a stalled run still
/// verifies. A fail-stopped MAPLE answers its blocking MMIO with
/// [`cohort_maple::DEAD_SENTINEL`] instead of holding the core forever —
/// the run always terminates, and the sentinel in the recorded `DMA_DONE`
/// stream is the clean error report software acts on (`verified` is then
/// false and `maple.fail_stops` counts the abort).
pub fn run_dma_chaos(scenario: &Scenario) -> RunResult {
    let spec = SystemSpec {
        cfg: scenario.soc.clone(),
        policy: scenario.policy,
        maple_accel: Some(scenario.workload.make_accel()),
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());

    let n = scenario.queue_size;
    let m = scenario.output_words();
    let in_va = sys.alloc_buffer(n * 8, 64);
    let out_va = sys.alloc_buffer(m.max(1) * 8, 64);
    let root_pa = sys.space.root_pa();

    let mut program = Program::new();
    program.push(Op::MmioStore {
        pa: MAPLE_MMIO_BASE + maple_regs::DMA_PTROOT,
        value: root_pa,
    });
    if let Some(csr) = scenario.workload.csr() {
        for chunk in csr.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            program.push(Op::MmioStore {
                pa: MAPLE_MMIO_BASE + maple_regs::CSR_DATA,
                value: u64::from_le_bytes(word),
            });
        }
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::CSR_COMMIT,
            value: csr.len() as u64,
        });
    }

    let data = scenario.input_words();
    let costs = scenario.costs;
    for (i, &w) in data.iter().enumerate() {
        program.push(Op::Alu(costs.push_loop_alu));
        program.push(Op::Store {
            va: in_va + (i as u64) * 8,
            value: w,
        });
    }
    program.push(Op::Fence);

    let block = costs.dma_block_bytes;
    let in_bytes = n * 8;
    let ratio_out = scenario.workload.words_out_per_block() * 8;
    let ratio_in = scenario.workload.words_in_per_block() * 8;
    let mut src_off = 0u64;
    let mut dst_off = 0u64;
    while src_off < in_bytes {
        let len = block.min(in_bytes - src_off);
        program.push(Op::KernelCost {
            cycles: u64::from(costs.dma_api_alu),
            insts: u64::from(costs.dma_api_alu) / 5,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_SRC,
            value: in_va + src_off,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_DST,
            value: out_va + dst_off,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_LEN,
            value: len,
        });
        program.push(Op::MmioStore {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_START,
            value: 1,
        });
        // Recorded: the per-block completion word software checks for the
        // dead-unit sentinel.
        program.push(Op::MmioLoad {
            pa: MAPLE_MMIO_BASE + maple_regs::DMA_DONE,
            record: true,
        });
        src_off += len;
        dst_off += len * ratio_out / ratio_in;
    }

    install_and_arm_plain(&mut sys, program);
    sys.soc.set_tracing(scenario.trace);
    let outcome = sys.soc.run(cycle_budget(scenario.queue_size));
    let core = sys.core();
    assert!(
        core.is_done(),
        "DMA chaos run did not terminate: quiescent={} cycle={} — a dead \
         MAPLE must answer blocking MMIO with the sentinel, never hang",
        outcome.quiescent,
        outcome.cycle,
    );
    let recorded = core.recorded().to_vec();
    let detected = recorded.contains(&cohort_maple::DEAD_SENTINEL);
    let out_bytes = sys.read_guest(out_va, (m.max(1) * 8) as usize);
    let outputs: Vec<u64> = out_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8B")))
        .collect();
    let expected = scenario.workload.reference_outputs(&data);
    let verified = !detected && outputs == expected;
    RunResult {
        cycles: core.core_counters().done_at,
        instret: core.core_counters().instret.get(),
        checksum: payload_checksum(core.core_counters().done_at, &recorded),
        recorded,
        verified,
        counters: sys.soc.all_counters(),
        histograms: sys.soc.stats().histogram_summaries(),
        stats_json: sys.soc.stats_json(),
        barrier_activations: sys.soc.kernel_counter("kernel.barrier_activations"),
        ff_cycles: sys.soc.kernel_counter("kernel.ff_cycles"),
        trace_json: scenario.trace.then(|| sys.soc.trace_json()),
    }
}

/// Runs the Cohort benchmark while a second Ariane core (the platform has
/// two, Fig. 2) thrashes the shared L2 with streaming stores — a
/// multicore-interference study beyond the paper's single-tenant numbers.
/// Returns `(contended, interference_core_stores)`.
pub fn run_cohort_interfered(scenario: &Scenario) -> RunResult {
    let spec = SystemSpec {
        cfg: scenario.soc.clone(),
        policy: scenario.policy,
        engine_accels: vec![scenario.workload.make_accel()],
        extra_core_programs: vec![Program::new()], // placeholder, loaded below
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());

    // The interference working set: 2x the L2, streamed repeatedly.
    let footprint = 2 * sys.soc.config().l2.capacity_bytes;
    let buf = sys.alloc_buffer(footprint, 64);
    let mut noise = Program::new();
    let passes = (scenario.queue_size / 64).max(2);
    for p in 0..passes {
        for line in 0..footprint / 64 {
            noise.push(Op::Store {
                va: buf + line * 64,
                value: p ^ line,
            });
        }
    }
    noise.push(Op::Fence);
    let noise_core = sys.extra_cores[0];
    sys.soc
        .component_mut::<InOrderCore>(noise_core)
        .expect("noise core")
        .load_program(noise);

    // Same benchmark program as run_cohort.
    let n = scenario.queue_size;
    let m = scenario.output_words();
    let in_q = sys.alloc_queue(8, n as u32);
    let out_q = sys.alloc_queue(8, m.max(1) as u32);
    let csr = scenario.workload.csr().map(|bytes| {
        let va = sys.alloc_buffer(bytes.len() as u64, 64);
        sys.write_guest(va, &bytes);
        (va, bytes.len() as u64)
    });
    let driver = sys.drivers[0].clone();
    let root_pa = sys.space.root_pa();
    let mut program = driver.register_ops(
        root_pa,
        &in_q.descriptor,
        &out_q.descriptor,
        csr.as_ref().map(|(va, b)| (*va, *b)),
        scenario.backoff,
    );
    push_pop_body(&mut program, scenario, &in_q, &out_q);
    program.append(driver.unregister_ops());
    install_and_arm(&mut sys, &driver, program);
    finish_run(sys, scenario)
}

/// Emits the interleaved push/pop batch loop shared by the Cohort
/// scenarios (§5.3 structure).
fn push_pop_body(
    program: &mut Program,
    scenario: &Scenario,
    in_q: &cohort_queue::QueueLayout,
    out_q: &cohort_queue::QueueLayout,
) {
    let data = scenario.input_words();
    let n = scenario.queue_size;
    let m = scenario.output_words();
    let batch = scenario.batch;
    let costs = scenario.costs;
    let out_per_in = (
        scenario.workload.words_out_per_block(),
        scenario.workload.words_in_per_block(),
    );
    let wpb_out = scenario.workload.words_out_per_block();
    let mut i = 0u64;
    let mut j = 0u64;
    while i < n {
        let push_end = (i + batch).min(n);
        while i < push_end {
            program.push(Op::Alu(costs.push_loop_alu));
            program.push(Op::Store {
                va: in_q.descriptor.element_va(i),
                value: data[i as usize],
            });
            i += 1;
        }
        program.push(Op::Fence);
        program.push(Op::Alu(1));
        program.push(Op::Store {
            va: in_q.descriptor.write_index_va,
            value: i,
        });
        let pop_end = (i * out_per_in.0 / out_per_in.1).min(m);
        while j < pop_end {
            let block_end = (j + wpb_out).min(pop_end);
            program.push(Op::WaitGe {
                va: out_q.descriptor.write_index_va,
                value: block_end,
            });
            while j < block_end {
                program.push(Op::Alu(costs.pop_loop_alu));
                program.push(Op::Load {
                    va: out_q.descriptor.element_va(j),
                    record: true,
                });
                j += 1;
            }
        }
        if pop_end > 0 {
            program.push(Op::Alu(1));
            program.push(Op::Store {
                va: out_q.descriptor.read_index_va,
                value: pop_end,
            });
        }
    }
    program.push(Op::Fence);
}

/// A fully custom single-engine run: any accelerator, any input stream,
/// any expected output — used by the ablation benches and the STFT / null
/// accelerator experiments.
pub struct CustomRun {
    /// The accelerator to host behind the Cohort engine.
    pub accel: Box<dyn cohort_accel::Accelerator>,
    /// Optional CSR configuration buffer.
    pub csr: Option<Vec<u8>>,
    /// Input words the core pushes.
    pub input: Vec<u64>,
    /// Expected output words (verified against what the core pops).
    pub expected: Vec<u64>,
    /// Pointer-update batching factor.
    pub batch: u64,
    /// RCM backoff window.
    pub backoff: u64,
    /// SoC configuration.
    pub soc: SocConfig,
    /// Mapping policy.
    pub policy: MapPolicy,
    /// When true, the run records the structured event trace.
    pub trace: bool,
}

impl CustomRun {
    /// Builds a custom run with platform defaults.
    pub fn new(
        accel: Box<dyn cohort_accel::Accelerator>,
        input: Vec<u64>,
        expected: Vec<u64>,
    ) -> Self {
        Self {
            accel,
            csr: None,
            input,
            expected,
            batch: 64,
            backoff: 700,
            soc: SocConfig::default(),
            policy: MapPolicy::Eager,
            trace: false,
        }
    }

    /// Executes the run on the simulated SoC.
    ///
    /// # Panics
    /// Panics if the benchmark does not complete within the cycle budget.
    pub fn run(self) -> RunResult {
        let CustomRun {
            accel,
            csr,
            input,
            expected,
            batch,
            backoff,
            soc,
            policy,
            trace,
        } = self;
        let spec = SystemSpec {
            cfg: soc,
            policy,
            engine_accels: vec![accel],
            ..SystemSpec::default()
        };
        let mut sys = SimSystem::build(spec, Program::new());
        let n = input.len() as u64;
        let m = expected.len() as u64;
        let in_q = sys.alloc_queue(8, n.max(1) as u32);
        let out_q = sys.alloc_queue(8, m.max(1) as u32);
        let csr = csr.map(|bytes| {
            let va = sys.alloc_buffer(bytes.len() as u64, 64);
            sys.write_guest(va, &bytes);
            (va, bytes.len() as u64)
        });
        let driver = sys.drivers[0].clone();
        let root_pa = sys.space.root_pa();
        let mut program =
            driver.register_ops(root_pa, &in_q.descriptor, &out_q.descriptor, csr, backoff);
        let batch = batch.max(1);
        for (i, &w) in input.iter().enumerate() {
            program.push(Op::Alu(2));
            program.push(Op::Store {
                va: in_q.descriptor.element_va(i as u64),
                value: w,
            });
            if (i as u64 + 1).is_multiple_of(batch) || i as u64 + 1 == n {
                program.push(Op::Fence);
                program.push(Op::Store {
                    va: in_q.descriptor.write_index_va,
                    value: i as u64 + 1,
                });
            }
        }
        let mut j = 0u64;
        while j < m {
            let end = (j + batch).min(m);
            program.push(Op::WaitGe {
                va: out_q.descriptor.write_index_va,
                value: end,
            });
            while j < end {
                program.push(Op::Alu(2));
                program.push(Op::Load {
                    va: out_q.descriptor.element_va(j),
                    record: true,
                });
                j += 1;
            }
            program.push(Op::Store {
                va: out_q.descriptor.read_index_va,
                value: j,
            });
        }
        program.push(Op::Fence);
        program.append(driver.unregister_ops());
        install_and_arm_plain(&mut sys, program);
        sys.soc.set_tracing(trace);
        let outcome = sys.soc.run(50_000_000);
        let core = sys.core();
        assert!(
            core.is_done(),
            "custom run stuck: quiescent={} cycle={}",
            outcome.quiescent,
            outcome.cycle
        );
        let recorded = core.recorded().to_vec();
        let verified = recorded == expected;
        RunResult {
            cycles: core.core_counters().done_at,
            instret: core.core_counters().instret.get(),
            checksum: payload_checksum(core.core_counters().done_at, &recorded),
            recorded,
            verified,
            counters: sys.soc.all_counters(),
            histograms: sys.soc.stats().histogram_summaries(),
            stats_json: sys.soc.stats_json(),
            barrier_activations: sys.soc.kernel_counter("kernel.barrier_activations"),
            ff_cycles: sys.soc.kernel_counter("kernel.ff_cycles"),
            trace_json: trace.then(|| sys.soc.trace_json()),
        }
    }
}

/// Runs the transparent accelerator-chaining scenario (paper Fig. 5 /
/// §4.5): the core pushes plaintext into `encrypt_fifo`; an AES Cohort
/// engine produces ciphertext into `hash_fifo`; a SHA Cohort engine
/// consumes it — engine to engine, with no software in between — and the
/// core pops digests from `result_fifo`. Verified against host-side
/// AES-then-SHA.
///
/// `queue_size` must be a multiple of 8 (whole SHA blocks).
///
/// # Panics
/// Panics if `queue_size` is not a multiple of 8 or the run fails.
pub fn run_cohort_chain(scenario: &Scenario) -> RunResult {
    assert_eq!(scenario.queue_size % 8, 0, "chain needs whole SHA blocks");
    let spec = SystemSpec {
        cfg: scenario.soc.clone(),
        policy: scenario.policy,
        engine_accels: vec![Box::new(Aes128Accel::new()), Box::new(Sha256Accel::new())],
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());

    let n = scenario.queue_size;
    let m = n / 2; // AES keeps size; SHA quarters it... 8 in -> 4 out
    let encrypt_q = sys.alloc_queue(8, n as u32);
    let hash_q = sys.alloc_queue(8, n as u32);
    let result_q = sys.alloc_queue(8, m as u32);
    let key_va = sys.alloc_buffer(16, 64);
    sys.write_guest(key_va, &AES_KEY);

    let aes_driver = sys.drivers[0].clone();
    let sha_driver = sys.drivers[1].clone();
    let root_pa = sys.space.root_pa();

    // Fig. 5: cohort_register(encrypt_acc, encrypt_fifo, hash_fifo);
    //         cohort_register(hash_acc, hash_fifo, result_fifo);
    let mut program = aes_driver.register_ops(
        root_pa,
        &encrypt_q.descriptor,
        &hash_q.descriptor,
        Some((key_va, 16)),
        scenario.backoff,
    );
    program.append(sha_driver.register_ops(
        root_pa,
        &hash_q.descriptor,
        &result_q.descriptor,
        None,
        scenario.backoff,
    ));

    let data = scenario.input_words();
    let batch = scenario.batch;
    for (i, &w) in data.iter().enumerate() {
        program.push(Op::Alu(scenario.costs.push_loop_alu));
        program.push(Op::Store {
            va: encrypt_q.descriptor.element_va(i as u64),
            value: w,
        });
        if (i as u64 + 1).is_multiple_of(batch) || i as u64 + 1 == n {
            program.push(Op::Fence);
            program.push(Op::Alu(1));
            program.push(Op::Store {
                va: encrypt_q.descriptor.write_index_va,
                value: i as u64 + 1,
            });
        }
    }
    for j in 0..m {
        program.push(Op::WaitGe {
            va: result_q.descriptor.write_index_va,
            value: j + 1,
        });
        program.push(Op::Alu(scenario.costs.pop_loop_alu));
        program.push(Op::Load {
            va: result_q.descriptor.element_va(j),
            record: true,
        });
    }
    program.push(Op::Store {
        va: result_q.descriptor.read_index_va,
        value: m,
    });
    program.push(Op::Fence);
    program.append(sha_driver.unregister_ops());
    program.append(aes_driver.unregister_ops());

    install_and_arm_plain(&mut sys, program);
    finish_chain_run(sys, scenario)
}

/// Runs the chain to completion and verifies the digests against the
/// host-side AES-then-SHA reference.
fn finish_chain_run(mut sys: SimSystem, scenario: &Scenario) -> RunResult {
    sys.soc.set_tracing(scenario.trace);
    let outcome = sys.soc.run(cycle_budget(scenario.queue_size));
    let core = sys.core();
    assert!(
        core.is_done(),
        "chain did not complete: quiescent={} cycle={}",
        outcome.quiescent,
        outcome.cycle
    );
    let recorded = core.recorded().to_vec();
    // Host reference: AES-ECB then raw-block SHA-256.
    let ct_words = Workload::Aes.reference_outputs(&scenario.input_words());
    let expected = Workload::Sha.reference_outputs(&ct_words);
    let verified = recorded == expected;
    RunResult {
        cycles: core.core_counters().done_at,
        instret: core.core_counters().instret.get(),
        checksum: payload_checksum(core.core_counters().done_at, &recorded),
        recorded,
        verified,
        counters: sys.soc.all_counters(),
        histograms: sys.soc.stats().histogram_summaries(),
        stats_json: sys.soc.stats_json(),
        barrier_activations: sys.soc.kernel_counter("kernel.barrier_activations"),
        ff_cycles: sys.soc.kernel_counter("kernel.ff_cycles"),
        trace_json: scenario.trace.then(|| sys.soc.trace_json()),
    }
}

/// Cycle at which [`run_cohort_chain_failover`] kills the victim engine
/// when the scenario carries no explicit fault plan: late enough that
/// registration finished and the pipeline is mid-flight, early enough
/// that plenty of elements remain to migrate.
pub const DEFAULT_CHAIN_KILL_CYCLE: u64 = 20_000;

/// The chained AES→SHA scenario of [`run_cohort_chain`] with a fail-stop
/// fault killing the middle (SHA, engine 1) engine mid-pipeline and the
/// failover stack armed: a third, cold-spare SHA engine; the victim's
/// forward-progress watchdog (quiesce + drain + spill on trip); and the
/// failover orchestrator on the victim's error IRQ, which checkpoints the
/// authoritative queue indices from coherent memory, fences the victim
/// behind a bumped epoch, and rebinds the same descriptors on the spare.
///
/// The run must record the exact fault-free digest stream — failover is
/// allowed to cost cycles, never elements.
///
/// When `scenario.soc.faults` is empty a single
/// `kill@`[`DEFAULT_CHAIN_KILL_CYCLE`]`:1` fault is injected; pass an
/// explicit plan to control timing.
///
/// # Panics
/// Panics if `queue_size` is not a multiple of 8 or the run wedges.
pub fn run_cohort_chain_failover(scenario: &Scenario) -> RunResult {
    assert_eq!(scenario.queue_size % 8, 0, "chain needs whole SHA blocks");
    let mut cfg = scenario.soc.clone();
    if cfg.faults.is_empty() {
        cfg.faults = FaultPlan::default().at(
            DEFAULT_CHAIN_KILL_CYCLE,
            FaultKind::KillEngine { engine: 1 },
        );
    }
    let spec = SystemSpec {
        cfg,
        policy: scenario.policy,
        engine_accels: vec![
            Box::new(Aes128Accel::new()),
            Box::new(Sha256Accel::new()),
            // The cold spare the victim's queues migrate onto.
            Box::new(Sha256Accel::new()),
        ],
        ..SystemSpec::default()
    };
    let mut sys = SimSystem::build(spec, Program::new());

    let n = scenario.queue_size;
    let m = n / 2;
    let encrypt_q = sys.alloc_queue(8, n as u32);
    let hash_q = sys.alloc_queue(8, n as u32);
    let result_q = sys.alloc_queue(8, m as u32);
    let key_va = sys.alloc_buffer(16, 64);
    sys.write_guest(key_va, &AES_KEY);

    // The victim's checkpoint spill page. The engine addresses it
    // physically, so resolve (and, under lazy mapping, fault in) the
    // page-aligned buffer up front.
    let spill_va = sys.alloc_buffer(PAGE_BYTES, PAGE_BYTES);
    if sys.space.translate(&sys.soc.mem, spill_va).is_none() {
        let mut space = sys.space.clone();
        space.handle_fault(&mut sys.soc.mem, &mut sys.frames, spill_va);
    }
    let spill_pa = sys
        .space
        .translate(&sys.soc.mem, spill_va)
        .expect("spill page mapped");

    let aes_driver = sys.drivers[0].clone();
    let sha_driver = sys.drivers[1].clone();
    let spare_driver = sys.drivers[2].clone();
    let root_pa = sys.space.root_pa();
    let watchdog = if scenario.watchdog == 0 {
        CHAOS_DEFAULT_WATCHDOG
    } else {
        scenario.watchdog
    };

    let mut program = aes_driver.register_ops(
        root_pa,
        &encrypt_q.descriptor,
        &hash_q.descriptor,
        Some((key_va, 16)),
        scenario.backoff,
    );
    program.append(sha_driver.register_ops(
        root_pa,
        &hash_q.descriptor,
        &result_q.descriptor,
        None,
        scenario.backoff,
    ));
    // Only the victim is watchdogged: during the outage the AES producer
    // legitimately spins on a full hash queue — a state the watchdog does
    // not treat as benign — while the healthy SHA states all are.
    program.append(sha_driver.watchdog_ops(watchdog));
    program.append(sha_driver.spill_ops(spill_pa));

    let data = scenario.input_words();
    let batch = scenario.batch;
    for (i, &w) in data.iter().enumerate() {
        program.push(Op::Alu(scenario.costs.push_loop_alu));
        program.push(Op::Store {
            va: encrypt_q.descriptor.element_va(i as u64),
            value: w,
        });
        if (i as u64 + 1).is_multiple_of(batch) || i as u64 + 1 == n {
            program.push(Op::Fence);
            program.push(Op::Alu(1));
            program.push(Op::Store {
                va: encrypt_q.descriptor.write_index_va,
                value: i as u64 + 1,
            });
        }
    }
    for j in 0..m {
        program.push(Op::WaitGe {
            va: result_q.descriptor.write_index_va,
            value: j + 1,
        });
        program.push(Op::Alu(scenario.costs.pop_loop_alu));
        program.push(Op::Load {
            va: result_q.descriptor.element_va(j),
            record: true,
        });
    }
    program.push(Op::Store {
        va: result_q.descriptor.read_index_va,
        value: m,
    });
    program.push(Op::Fence);
    program.append(spare_driver.unregister_ops());
    program.append(sha_driver.unregister_ops());
    program.append(aes_driver.unregister_ops());

    install_and_arm_plain(&mut sys, program);

    let vm = CohortDriver::shared_vm(sys.space.clone(), sys.frames.clone());
    let core_id = sys.core;
    let core = sys
        .soc
        .component_mut::<InOrderCore>(core_id)
        .expect("core present");
    sha_driver.install_failover_handler(
        core,
        FailoverConfig {
            spare: spare_driver,
            vm,
            root_pa,
            input: hash_q.descriptor,
            output: result_q.descriptor,
            csr: None,
            backoff: scenario.backoff,
            watchdog,
            spill_pa,
        },
    );
    finish_chain_run(sys, scenario)
}

/// Which scenario runner executes a [`Scenario`]: the declarative name
/// shared by `socrun --mode` and the fleet spec's `runner =` key, so every
/// scenario is *constructed from parameters* instead of being a one-off
/// hand-written function call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Runner {
    /// Cohort engine + SPSC queues ([`run_cohort`]).
    Cohort,
    /// MMIO word-at-a-time baseline ([`run_mmio`]).
    Mmio,
    /// Coherent-DMA baseline ([`run_dma`]).
    Dma,
    /// AES→SHA engine chain ([`run_cohort_chain`]).
    Chain,
    /// Cohort run with an L2-thrashing second core ([`run_cohort_interfered`]).
    Interfered,
    /// Cohort run with the full recovery stack armed ([`run_cohort_chaos`]).
    Chaos,
    /// Chained run with a mid-pipeline kill and a cold spare
    /// ([`run_cohort_chain_failover`]).
    Failover,
    /// DMA baseline hardened for MAPLE faults ([`run_dma_chaos`]).
    DmaChaos,
    /// Multi-engine sharded stream ([`run_cohort_sharded`]).
    Sharded,
    /// 16-core big.LITTLE mesh: 4 shards + 11 noise cores
    /// ([`mesh16_scenario`]).
    Mesh16,
}

impl Runner {
    /// Every runner, in declaration order.
    pub const ALL: [Runner; 10] = [
        Runner::Cohort,
        Runner::Mmio,
        Runner::Dma,
        Runner::Chain,
        Runner::Interfered,
        Runner::Chaos,
        Runner::Failover,
        Runner::DmaChaos,
        Runner::Sharded,
        Runner::Mesh16,
    ];

    /// The declarative name (`socrun --mode`, fleet `runner =`).
    pub fn name(&self) -> &'static str {
        match self {
            Runner::Cohort => "cohort",
            Runner::Mmio => "mmio",
            Runner::Dma => "dma",
            Runner::Chain => "chain",
            Runner::Interfered => "interfered",
            Runner::Chaos => "chaos",
            Runner::Failover => "failover",
            Runner::DmaChaos => "dma-chaos",
            Runner::Sharded => "shard",
            Runner::Mesh16 => "mesh16",
        }
    }

    /// Parses a runner name (`shard` and `sharded` both accepted).
    pub fn parse(s: &str) -> Option<Runner> {
        match s {
            "sharded" => Some(Runner::Sharded),
            _ => Runner::ALL.iter().copied().find(|r| r.name() == s),
        }
    }

    /// Queue-size granularity this runner requires: the chain pipelines
    /// need whole SHA blocks, the sharded runners whole accelerator
    /// blocks. Validating `queue % multiple == 0` at spec-load time turns
    /// a mid-run assert into a structured error.
    pub fn queue_multiple(&self, workload: Workload) -> u64 {
        match self {
            Runner::Chain | Runner::Failover => 8,
            Runner::Sharded | Runner::Mesh16 => workload.words_in_per_block(),
            _ => 1,
        }
    }

    /// True for runners that bind engines from [`SocConfig::engines`]
    /// (the ones a `kill@C:E` shard fault can target).
    pub fn is_sharded(&self) -> bool {
        matches!(self, Runner::Sharded | Runner::Mesh16)
    }

    /// True for runners that host the workload behind Cohort engines at
    /// all (false for the MMIO/DMA baselines, which use MAPLE).
    pub fn uses_cohort_engines(&self) -> bool {
        !matches!(self, Runner::Mmio | Runner::Dma | Runner::DmaChaos)
    }
}

impl std::fmt::Display for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Engines the SoC must instantiate for a sharded run: one per shard,
/// plus one spare when the fault plan kills a shard engine (the failover
/// target). Mirrored by `socrun --shards` and the fleet loader.
pub fn sharded_engines_for(faults: &FaultPlan, shards: usize) -> usize {
    let kill_targets_shard = faults
        .schedule()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::KillEngine { engine } if (engine as usize) < shards));
    shards + usize::from(kill_targets_shard)
}

/// Runs `scenario` through `runner` — the single dispatch point behind
/// `socrun` and the fleet runner. `shard` parameterises the sharded
/// runner (ignored elsewhere); [`Runner::Mesh16`] builds its own 4-shard,
/// 11-noise-core spec and forces the engine count the mesh needs.
///
/// # Errors
/// [`ShardError`] when a sharded spec asks for more shards than
/// [`SocConfig::engines`] provides.
///
/// # Panics
/// Panics where the underlying runners do: queue-granularity violations
/// and runs that exceed their cycle budget.
pub fn run_scenario(
    runner: Runner,
    scenario: &Scenario,
    shard: Option<&ShardSpec>,
) -> Result<RunResult, ShardError> {
    match runner {
        Runner::Cohort => Ok(run_cohort(scenario)),
        Runner::Mmio => Ok(run_mmio(scenario)),
        Runner::Dma => Ok(run_dma(scenario)),
        Runner::Chain => Ok(run_cohort_chain(scenario)),
        Runner::Interfered => Ok(run_cohort_interfered(scenario)),
        Runner::Chaos => Ok(run_cohort_chaos(scenario)),
        Runner::Failover => Ok(run_cohort_chain_failover(scenario)),
        Runner::DmaChaos => Ok(run_dma_chaos(scenario)),
        Runner::Sharded => {
            let default_spec;
            let spec = match shard {
                Some(s) => s,
                None => {
                    default_spec = ShardSpec::new(1);
                    &default_spec
                }
            };
            run_cohort_sharded(scenario, spec)
        }
        Runner::Mesh16 => {
            let (mesh, spec) = mesh16_scenario(scenario.queue_size, scenario.batch);
            let mut scenario = scenario.clone();
            // A kill fault on a mesh shard needs the failover spare on
            // top of the mesh's fixed 4-engine pool; fault-free meshes
            // keep exactly the canonical geometry (and its baselines).
            scenario.soc.engines = mesh
                .soc
                .engines
                .max(sharded_engines_for(&scenario.soc.faults, spec.shards));
            run_cohort_sharded(&scenario, &spec)
        }
    }
}

fn install_and_arm_plain(sys: &mut SimSystem, program: Program) {
    let core_id = sys.core;
    let core = sys
        .soc
        .component_mut::<InOrderCore>(core_id)
        .expect("core present");
    core.load_program(program);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_sha_small_end_to_end() {
        let scenario = Scenario::new(Workload::Sha, 64, 8);
        let r = run_cohort(&scenario);
        assert!(r.verified, "digest mismatch");
        assert_eq!(r.recorded.len(), 32);
        assert!(r.cycles > 0);
    }

    #[test]
    fn cohort_aes_small_end_to_end() {
        let scenario = Scenario::new(Workload::Aes, 64, 4);
        let r = run_cohort(&scenario);
        assert!(r.verified, "ciphertext mismatch");
        assert_eq!(r.recorded.len(), 64);
    }

    #[test]
    fn mmio_sha_small_end_to_end() {
        let scenario = Scenario::new(Workload::Sha, 64, 8);
        let r = run_mmio(&scenario);
        assert!(r.verified, "digest mismatch");
    }

    #[test]
    fn dma_aes_small_end_to_end() {
        let scenario = Scenario::new(Workload::Aes, 64, 8);
        let r = run_dma(&scenario);
        assert!(r.verified, "ciphertext mismatch");
    }

    #[test]
    fn chained_aes_sha_engines_end_to_end() {
        let scenario = Scenario::new(Workload::Sha, 64, 16);
        let r = run_cohort_chain(&scenario);
        assert!(r.verified, "chained digest mismatch");
        assert_eq!(r.recorded.len(), 32);
    }

    #[test]
    fn sharded_aes_small_end_to_end() {
        let mut scenario = Scenario::new(Workload::Aes, 64, 4);
        scenario.soc = SocConfig::default().with_engines(2);
        let r = run_cohort_sharded(&scenario, &ShardSpec::new(2)).expect("pool binds");
        assert!(r.verified, "sharded ciphertext mismatch");
        assert_eq!(r.recorded.len(), 64);
    }

    #[test]
    fn sharded_sha_handles_non_unit_block_ratio() {
        let mut scenario = Scenario::new(Workload::Sha, 64, 8);
        scenario.soc = SocConfig::default().with_engines(2);
        let r = run_cohort_sharded(&scenario, &ShardSpec::new(2)).expect("pool binds");
        assert!(r.verified, "sharded digest mismatch");
        assert_eq!(r.recorded.len(), 32);
    }

    #[test]
    fn mesh16_big_little_end_to_end() {
        let (scenario, spec) = mesh16_scenario(64, 4);
        let r = run_cohort_sharded(&scenario, &spec).expect("pool binds");
        assert!(r.verified, "mesh16 ciphertext mismatch");
        assert_eq!(r.recorded.len(), 64);
    }

    #[test]
    fn sharded_run_rejects_oversubscribed_pool() {
        let mut scenario = Scenario::new(Workload::Aes, 64, 4);
        scenario.soc = SocConfig::default().with_engines(2);
        let err = run_cohort_sharded(&scenario, &ShardSpec::new(3)).unwrap_err();
        assert!(matches!(
            err,
            ShardError::NotEnoughEngines {
                requested: 3,
                engines: 2,
                spares: 0
            }
        ));
    }

    #[test]
    fn runner_names_round_trip() {
        for r in Runner::ALL {
            assert_eq!(Runner::parse(r.name()), Some(r), "{r} must round-trip");
        }
        assert_eq!(Runner::parse("sharded"), Some(Runner::Sharded));
        assert_eq!(Runner::parse("nope"), None);
    }

    #[test]
    fn run_scenario_dispatch_matches_direct_call() {
        let scenario = Scenario::new(Workload::Aes, 64, 8);
        let direct = run_cohort(&scenario);
        let dispatched = run_scenario(Runner::Cohort, &scenario, None).expect("no shard binding");
        assert_eq!(direct.cycles, dispatched.cycles);
        assert_eq!(direct.checksum, dispatched.checksum);
    }

    #[test]
    fn sharded_engines_add_a_spare_only_for_shard_kills() {
        let none = FaultPlan::default();
        assert_eq!(sharded_engines_for(&none, 4), 4);
        let shard_kill = FaultPlan::default().at(10_000, FaultKind::KillEngine { engine: 1 });
        assert_eq!(sharded_engines_for(&shard_kill, 4), 5);
        let off_pool = FaultPlan::default().at(10_000, FaultKind::KillEngine { engine: 9 });
        assert_eq!(sharded_engines_for(&off_pool, 4), 4);
    }

    #[test]
    fn cohort_beats_mmio_at_batch_64() {
        let scenario = Scenario::new(Workload::Sha, 256, 64);
        let c = run_cohort(&scenario);
        let m = run_mmio(&scenario);
        assert!(c.verified && m.verified);
        assert!(
            m.cycles > c.cycles,
            "MMIO ({}) should be slower than Cohort ({})",
            m.cycles,
            c.cycles
        );
    }

    #[test]
    fn batching_improves_cohort_latency() {
        let small = run_cohort(&Scenario::new(Workload::Aes, 256, 2));
        let large = run_cohort(&Scenario::new(Workload::Aes, 256, 64));
        assert!(small.verified && large.verified);
        assert!(
            small.cycles > large.cycles,
            "batch=2 ({}) should be slower than batch=64 ({})",
            small.cycles,
            large.cycles
        );
    }
}
