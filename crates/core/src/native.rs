//! The native runtime: Software-Oriented Acceleration on real threads.
//!
//! `cohort_register` replaces a software consumer/producer thread with an
//! accelerator, keeping the queues unchanged (paper §3.3): the accelerator
//! thread pops 64-bit words from its input queue, ratchets them into native
//! blocks, computes, and pushes result words into its output queue. Chains
//! (Fig. 5) fall out of composition, and runtime reconfiguration is just
//! unregistering one accelerator and registering another on the same
//! queues.

use cohort_accel::ratchet::Ratchet;
use cohort_accel::Accelerator;
use cohort_queue::{Consumer, Producer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Pushes, spinning while the queue is full (the classic C `push`).
pub fn push_blocking<T>(producer: &mut Producer<T>, mut value: T) {
    let mut spins = 0u32;
    loop {
        match producer.push(value) {
            Ok(()) => return,
            Err(e) => {
                value = e.0;
                spins += 1;
                if spins.is_multiple_of(64) {
                    // Be a good citizen on oversubscribed machines.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Pops, spinning while the queue is empty (the classic C `pop`).
pub fn pop_blocking<T>(consumer: &mut Consumer<T>) -> T {
    let mut spins = 0u32;
    loop {
        if let Some(v) = consumer.pop() {
            return v;
        }
        spins += 1;
        if spins.is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// A registered accelerator thread; unregister to stop it.
#[derive(Debug)]
pub struct CohortHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<AccelStats>>,
}

/// Statistics returned when an accelerator thread is unregistered.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccelStats {
    /// Input words consumed.
    pub words_in: u64,
    /// Output words produced.
    pub words_out: u64,
}

impl CohortHandle {
    /// Stops the accelerator thread after it drains pending input, and
    /// returns its statistics — the `cohort_unregister` of Table 1.
    pub fn unregister(mut self) -> AccelStats {
        self.stop.store(true, Ordering::Release);
        self.join
            .take()
            .expect("join handle present")
            .join()
            .expect("accelerator thread panicked")
    }
}

impl Drop for CohortHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Connects `accel` between two SPSC queues and runs it on its own thread —
/// the `cohort_register` of Table 1, native edition. `csr` is the optional
/// configuration struct delivered before any data (paper §4.3).
///
/// The thread consumes input words as they are published (honouring the
/// producer's batching), processes whole input blocks, and publishes output
/// words. On unregister it finishes in-flight blocks, flushes the
/// accelerator's `finish()` output, zero-pads any sub-word residue, and
/// exits.
///
/// # Panics
/// Panics (in the spawned thread) if the accelerator rejects the CSR
/// configuration.
pub fn cohort_register(
    mut accel: Box<dyn Accelerator>,
    mut input: Consumer<u64>,
    mut output: Producer<u64>,
    csr: Option<Vec<u8>>,
) -> CohortHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_thread = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name(format!("cohort-{}", accel.descriptor().name))
        .spawn(move || {
            if let Some(csr) = csr {
                accel
                    .configure(&csr)
                    .expect("accelerator rejected CSR configuration");
            }
            let block = accel.descriptor().input_block_bytes;
            let mut in_ratchet = Ratchet::new(block);
            let mut out_ratchet = Ratchet::new(8);
            let mut stats = AccelStats::default();
            loop {
                let mut progressed = false;
                if let Some(word) = input.pop() {
                    stats.words_in += 1;
                    in_ratchet.push_word(word);
                    progressed = true;
                }
                while let Some(b) = in_ratchet.pop_block() {
                    out_ratchet.push_bytes(&accel.process_block(&b));
                    progressed = true;
                }
                while let Some(w) = out_ratchet.pop_word() {
                    stats.words_out += 1;
                    push_blocking(&mut output, w);
                    progressed = true;
                }
                if !progressed {
                    if stop_thread.load(Ordering::Acquire) {
                        // Drain: flush end-of-stream output and any
                        // sub-word residue (zero padded).
                        out_ratchet.push_bytes(&accel.finish());
                        while let Some(w) = out_ratchet.pop_word() {
                            stats.words_out += 1;
                            push_blocking(&mut output, w);
                        }
                        if let Some(pad) = {
                            let mut tmp = Ratchet::new(8);
                            std::mem::swap(&mut tmp, &mut out_ratchet);
                            tmp.flush_padded()
                        } {
                            let w = u64::from_le_bytes(pad[..8].try_into().expect("8 bytes"));
                            stats.words_out += 1;
                            push_blocking(&mut output, w);
                        }
                        return stats;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        })
        .expect("spawn accelerator thread");
    CohortHandle {
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_accel::aes128::{Aes128, Aes128Accel};
    use cohort_accel::nullfifo::NullFifo;
    use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
    use cohort_queue::spsc_channel;

    #[test]
    fn sha_thread_end_to_end() {
        let (mut tx, acc_in) = spsc_channel::<u64>(256);
        let (acc_out, mut rx) = spsc_channel::<u64>(256);
        let h = cohort_register(Box::new(Sha256Accel::new()), acc_in, acc_out, None);
        let mut expected = Vec::new();
        for b in 0..10u64 {
            let mut block = [0u8; 64];
            for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
                chunk.copy_from_slice(&(b * 8 + i as u64).to_le_bytes());
            }
            expected.extend_from_slice(&sha256_raw_block(&block));
            for i in 0..8u64 {
                push_blocking(&mut tx, b * 8 + i);
            }
        }
        let mut got = Vec::new();
        for _ in 0..10 * 4 {
            got.extend_from_slice(&pop_blocking(&mut rx).to_le_bytes());
        }
        assert_eq!(got, expected);
        let stats = h.unregister();
        assert_eq!(stats.words_in, 80);
        assert_eq!(stats.words_out, 40);
    }

    #[test]
    fn aes_with_csr_key() {
        let key = *b"A sixteen-byte k";
        let (mut tx, acc_in) = spsc_channel::<u64>(64);
        let (acc_out, mut rx) = spsc_channel::<u64>(64);
        let h = cohort_register(
            Box::new(Aes128Accel::new()),
            acc_in,
            acc_out,
            Some(key.to_vec()),
        );
        let pt = [7u8; 16];
        for chunk in pt.chunks_exact(8) {
            push_blocking(&mut tx, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let mut ct = Vec::new();
        for _ in 0..2 {
            ct.extend_from_slice(&pop_blocking(&mut rx).to_le_bytes());
        }
        assert_eq!(ct, Aes128::new(&key).encrypt_block(&pt).to_vec());
        h.unregister();
    }

    #[test]
    fn chaining_encrypt_then_hash() {
        // Fig. 5: push into encrypt_fifo, pop the hash from result_fifo.
        let key = *b"0123456789abcdef";
        let (mut tx, enc_in) = spsc_channel::<u64>(256);
        let (enc_out, hash_in) = spsc_channel::<u64>(256);
        let (hash_out, mut rx) = spsc_channel::<u64>(256);
        let h1 = cohort_register(
            Box::new(Aes128Accel::new()),
            enc_in,
            enc_out,
            Some(key.to_vec()),
        );
        let h2 = cohort_register(Box::new(Sha256Accel::new()), hash_in, hash_out, None);

        // 4 AES blocks = one SHA block of ciphertext.
        let pt: Vec<u8> = (0..64u8).collect();
        for chunk in pt.chunks_exact(8) {
            push_blocking(&mut tx, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let mut digest = Vec::new();
        for _ in 0..4 {
            digest.extend_from_slice(&pop_blocking(&mut rx).to_le_bytes());
        }
        // Host-side reference: AES-ECB then raw SHA-256 block.
        let aes = Aes128::new(&key);
        let mut ct = Vec::new();
        for chunk in pt.chunks_exact(16) {
            ct.extend_from_slice(&aes.encrypt_block(chunk.try_into().unwrap()));
        }
        let expect = sha256_raw_block(ct.as_slice().try_into().unwrap());
        assert_eq!(digest, expect.to_vec());
        h1.unregister();
        h2.unregister();
    }

    #[test]
    fn runtime_reconfiguration_same_queues() {
        // Replace the accelerator behind the same queue pair at runtime.
        let (mut tx, acc_in) = spsc_channel::<u64>(64);
        let (acc_out, mut rx) = spsc_channel::<u64>(64);
        let h = cohort_register(Box::new(NullFifo::new()), acc_in, acc_out, None);
        push_blocking(&mut tx, 123);
        assert_eq!(pop_blocking(&mut rx), 123);
        let _ = h.unregister();
        // The handle returned the queues' other halves to... the thread
        // owned them; register a new pair to model reconfiguration of the
        // software graph.
        let (mut tx2, acc_in2) = spsc_channel::<u64>(64);
        let (acc_out2, mut rx2) = spsc_channel::<u64>(64);
        let h2 = cohort_register(
            Box::new(NullFifo::with_geometry(8, 0)),
            acc_in2,
            acc_out2,
            None,
        );
        push_blocking(&mut tx2, 9);
        assert_eq!(pop_blocking(&mut rx2), 9);
        h2.unregister();
    }

    #[test]
    fn unregister_drains_in_flight_data() {
        let (mut tx, acc_in) = spsc_channel::<u64>(64);
        let (acc_out, mut rx) = spsc_channel::<u64>(64);
        let h = cohort_register(Box::new(NullFifo::new()), acc_in, acc_out, None);
        for i in 0..32u64 {
            push_blocking(&mut tx, i);
        }
        let stats = h.unregister();
        assert_eq!(stats.words_in, 32, "all input drained before exit");
        for i in 0..32u64 {
            assert_eq!(rx.pop(), Some(i));
        }
    }
}
