//! # cohort — Software-Oriented Acceleration
//!
//! The public face of the Cohort reproduction (ASPLOS 2023): software talks
//! to accelerators through ordinary shared-memory SPSC queues; a Cohort
//! engine (or, natively, an accelerator thread) sits on the other side.
//!
//! Two runtimes share one programming model:
//!
//! * [`native`] — Software-Oriented Acceleration on the host machine:
//!   [`native::cohort_register`] connects an accelerator implementation to
//!   a pair of real lock-free queues and runs it on its own thread, exactly
//!   like replacing a software pipeline stage (paper Fig. 4/5). Supports
//!   transparent chaining and runtime reconfiguration.
//! * [`ring`] — the §7 future-work item realised: an io_uring-style
//!   asynchronous submission/completion interface over the native runtime;
//! * [`system`] + [`scenarios`] — the cycle-level SoC reproduction: build a
//!   simulated OpenPiton-style multicore with Cohort engines and MAPLE
//!   baselines, run the paper's benchmarks, and read back latency/IPC
//!   counters. This is what regenerates every figure and table of §6.
//!
//! ## Paper API mapping (Table 1)
//!
//! | Paper C API | This crate |
//! |---|---|
//! | `fifo_init(elem_size, len)` | [`cohort_queue::spsc_channel`] |
//! | `push(e, q)` | [`cohort_queue::Producer::push`] / [`native::push_blocking`] |
//! | `pop(q)` | [`cohort_queue::Consumer::pop`] / [`native::pop_blocking`] |
//! | `fifo_deinit(q)` | dropping both halves |
//! | `cohort_register(acc, in, out)` | [`native::cohort_register`] (native) / [`cohort_os::CohortDriver::register_ops`] (sim) |
//! | `cohort_unregister(...)` | [`native::CohortHandle::unregister`] / [`cohort_os::CohortDriver::unregister_ops`] |
//!
//! ## Quickstart (native runtime)
//!
//! ```
//! use cohort::native::{cohort_register, pop_blocking, push_blocking};
//! use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
//! use cohort_queue::spsc_channel;
//!
//! // Two ordinary SPSC queues...
//! let (mut to_acc, acc_in) = spsc_channel::<u64>(64);
//! let (acc_out, mut from_acc) = spsc_channel::<u64>(64);
//! // ...and an accelerator where a consumer thread would be.
//! let handle = cohort_register(Box::new(Sha256Accel::new()), acc_in, acc_out, None);
//!
//! let block = [0x42u8; 64];
//! for chunk in block.chunks_exact(8) {
//!     push_blocking(&mut to_acc, u64::from_le_bytes(chunk.try_into().unwrap()));
//! }
//! let mut digest = Vec::new();
//! for _ in 0..4 {
//!     digest.extend_from_slice(&pop_blocking(&mut from_acc).to_le_bytes());
//! }
//! assert_eq!(digest, sha256_raw_block(&block).to_vec());
//! handle.unregister();
//! ```

pub mod native;
pub mod ring;
pub mod scenarios;
pub mod system;

pub use native::{cohort_register, CohortHandle};
pub use scenarios::{RunResult, Scenario, Workload};
