//! Full-system integration tests: benchmark scenarios on the simulated SoC
//! with end-to-end output verification.

use cohort::scenarios::{run_cohort, run_cohort_chain, run_dma, run_mmio, Scenario, Workload};
use cohort_os::addrspace::MapPolicy;

#[test]
fn cohort_sha_verifies_across_sizes_and_batches() {
    for qs in [64u64, 256, 1024] {
        for batch in [8u64, 64] {
            let r = run_cohort(&Scenario::new(Workload::Sha, qs, batch));
            assert!(r.verified, "sha qs={qs} batch={batch}");
            assert_eq!(r.recorded.len() as u64, qs / 2);
        }
    }
}

#[test]
fn cohort_aes_verifies_across_sizes_and_batches() {
    for qs in [64u64, 256] {
        for batch in [2u64, 16, 64] {
            let r = run_cohort(&Scenario::new(Workload::Aes, qs, batch));
            assert!(r.verified, "aes qs={qs} batch={batch}");
            assert_eq!(r.recorded.len() as u64, qs);
        }
    }
}

#[test]
fn baselines_verify() {
    for wl in [Workload::Sha, Workload::Aes] {
        let m = run_mmio(&Scenario::new(wl, 128, 64));
        assert!(m.verified, "{wl:?} mmio");
        let d = run_dma(&Scenario::new(wl, 128, 64));
        assert!(d.verified, "{wl:?} dma");
    }
}

#[test]
fn cohort_outperforms_both_baselines_at_batch_64() {
    for wl in [Workload::Sha, Workload::Aes] {
        let s = Scenario::new(wl, 512, 64);
        let c = run_cohort(&s).cycles;
        let m = run_mmio(&s).cycles;
        let d = run_dma(&s).cycles;
        assert!(c < m, "{wl:?}: cohort {c} vs mmio {m}");
        assert!(c < d, "{wl:?}: cohort {c} vs dma {d}");
    }
}

#[test]
fn sha_speedup_larger_than_aes_speedup() {
    // The paper's central asymmetry (§6.1): AES's symmetric data movement
    // and lower latency give it smaller gains.
    let sha = Scenario::new(Workload::Sha, 1024, 64);
    let aes = Scenario::new(Workload::Aes, 1024, 64);
    let sha_speedup = run_mmio(&sha).cycles as f64 / run_cohort(&sha).cycles as f64;
    let aes_speedup = run_mmio(&aes).cycles as f64 / run_cohort(&aes).cycles as f64;
    assert!(
        sha_speedup > 1.5 * aes_speedup,
        "sha {sha_speedup:.2} vs aes {aes_speedup:.2}"
    );
}

#[test]
fn small_batches_lose_to_baselines_for_aes() {
    // Fig. 9: "batch sizes larger than 16 elements always perform equal or
    // better than both baselines" — conversely batch=2 is worse.
    let s = Scenario::new(Workload::Aes, 512, 2);
    let c = run_cohort(&s).cycles;
    let m = run_mmio(&s).cycles;
    assert!(c > m, "AES batch=2 cohort {c} should lose to MMIO {m}");
}

#[test]
fn lazy_mapping_faults_are_resolved_by_the_driver() {
    let mut s = Scenario::new(Workload::Sha, 128, 16);
    s.policy = MapPolicy::Lazy;
    let r = run_cohort(&s);
    assert!(r.verified, "lazy run must still verify");
    let faults = r.counter("engine", "faults").unwrap_or(0);
    assert!(faults > 0, "lazy mapping must exercise the page-fault path");
    let irqs = r.counter("core", "irqs").unwrap_or(0);
    // Concurrent faults on both MTE channels coalesce into one interrupt.
    assert!(irqs > 0 && irqs <= faults, "irqs {irqs} vs faults {faults}");
}

#[test]
fn lazy_mapping_costs_more_than_eager() {
    let eager = run_cohort(&Scenario::new(Workload::Sha, 256, 64));
    let mut s = Scenario::new(Workload::Sha, 256, 64);
    s.policy = MapPolicy::Lazy;
    let lazy = run_cohort(&s);
    assert!(lazy.cycles > eager.cycles);
}

#[test]
fn huge_pages_reduce_tlb_misses() {
    let mut small = Scenario::new(Workload::Sha, 2048, 64);
    small.soc.tlb_entries = 4; // stress the TLB
    let base = run_cohort(&small);
    let mut huge = small.clone();
    huge.policy = MapPolicy::HugePages;
    let hp = run_cohort(&huge);
    assert!(hp.verified && base.verified);
    let m_base = base.counter("engine", "tlb_misses").unwrap();
    let m_hp = hp.counter("engine", "tlb_misses").unwrap();
    assert!(
        m_hp < m_base,
        "huge pages should cut engine TLB misses: {m_hp} vs {m_base}"
    );
}

#[test]
fn rcm_observes_invalidations() {
    let r = run_cohort(&Scenario::new(Workload::Sha, 256, 16));
    let invs = r.counter("engine", "rcm_invalidations").unwrap();
    assert!(
        invs > 0,
        "batched publications must be seen as invalidations"
    );
    let backoffs = r.counter("engine", "backoffs").unwrap();
    assert!(backoffs > 0);
}

#[test]
fn engine_counters_match_data_volume() {
    let r = run_cohort(&Scenario::new(Workload::Aes, 256, 32));
    assert_eq!(r.counter("engine", "consumed"), Some(256));
    assert_eq!(r.counter("engine", "produced"), Some(256));
}

#[test]
fn chained_engines_verify_and_report() {
    let r = run_cohort_chain(&Scenario::new(Workload::Sha, 128, 16));
    assert!(r.verified);
    assert_eq!(r.recorded.len(), 64);
    // Both engines moved data.
    let engines: Vec<_> = r
        .counters
        .iter()
        .filter(|(c, _)| c.starts_with("engine#"))
        .collect();
    assert_eq!(engines.len(), 2);
    for (name, counters) in engines {
        let consumed = counters.iter().find(|(k, _)| k == "consumed").unwrap().1;
        assert!(consumed > 0, "{name} consumed nothing");
    }
}

#[test]
fn deterministic_given_seed() {
    let a = run_cohort(&Scenario::new(Workload::Sha, 128, 16));
    let b = run_cohort(&Scenario::new(Workload::Sha, 128, 16));
    assert_eq!(a.cycles, b.cycles, "simulation must be deterministic");
    assert_eq!(a.instret, b.instret);
    assert_eq!(a.recorded, b.recorded);
}

#[test]
fn different_seeds_different_data_same_shape() {
    let mut s1 = Scenario::new(Workload::Aes, 128, 16);
    s1.seed = 1;
    let mut s2 = Scenario::new(Workload::Aes, 128, 16);
    s2.seed = 2;
    let a = run_cohort(&s1);
    let b = run_cohort(&s2);
    assert!(a.verified && b.verified);
    assert_ne!(
        a.recorded, b.recorded,
        "different plaintext, different ciphertext"
    );
}

#[test]
fn latency_scales_roughly_linearly_with_queue_size() {
    let small = run_cohort(&Scenario::new(Workload::Sha, 256, 64)).cycles as f64;
    let large = run_cohort(&Scenario::new(Workload::Sha, 1024, 64)).cycles as f64;
    let ratio = large / small;
    assert!(
        (2.5..6.0).contains(&ratio),
        "4x data should be ~4x cycles, got {ratio:.2}"
    );
}
