//! Inter-process communication through a Cohort engine on the simulated
//! SoC (paper §4.5): process A (core 1) produces into the accelerator's
//! input queue; process B (core 2) consumes the output queue through its
//! *own* mapping of the same physical pages. The engine translates through
//! process A's page tables; coherence is physical, so everyone agrees.

use cohort_accel::nullfifo::NullFifo;
use cohort_engine::CohortEngine;
use cohort_os::addrspace::{AddressSpace, MapPolicy};
use cohort_os::driver::regs;
use cohort_os::frame::FrameAllocator;
use cohort_os::CohortDriver;
use cohort_queue::QueueLayout;
use cohort_sim::component::TileCoord;
use cohort_sim::config::SocConfig;
use cohort_sim::core::InOrderCore;
use cohort_sim::directory::Directory;
use cohort_sim::program::{Op, Program};
use cohort_sim::soc::Soc;

const ENGINE_MMIO: u64 = 0x1000_0000;

#[test]
fn two_processes_share_queues_around_an_engine() {
    let cfg = SocConfig::default();
    let mut soc = Soc::new(cfg.clone());
    let dir = soc.add_component(TileCoord::new(0, 0), Box::new(Directory::new(&cfg)));
    let mut frames = FrameAllocator::new(0x8000_0000, 0x9000_0000);

    // Process A owns the queues.
    let mut space_a = AddressSpace::new(&mut frames, MapPolicy::Eager);
    let n = 64u32;
    let q_bytes = QueueLayout::standard(0, 8, n).region_bytes;
    let in_va = space_a.malloc(&mut soc.mem, &mut frames, q_bytes, 4096);
    let out_va = space_a.malloc(&mut soc.mem, &mut frames, q_bytes, 4096);
    let in_q = QueueLayout::standard(in_va, 8, n);
    let out_q = QueueLayout::standard(out_va, 8, n);

    // Process B maps the output queue's physical pages at its own VAs.
    let mut space_b = AddressSpace::new(&mut frames, MapPolicy::Eager);
    let out_vb = space_b.map_shared(&mut soc.mem, &mut frames, &space_a, out_va, q_bytes);
    let out_q_b = QueueLayout::standard(out_vb, 8, n);
    assert_ne!(out_vb, out_va, "distinct virtual views");
    assert_eq!(
        space_b.translate(&soc.mem, out_vb),
        space_a.translate(&soc.mem, out_va),
        "same physical page"
    );

    // Process A: register (engine translates through A's tables) and push.
    let driver = CohortDriver::new(ENGINE_MMIO, 7);
    let mut prog_a = driver.register_ops(
        space_a.root_pa(),
        &in_q.descriptor,
        &out_q.descriptor,
        None,
        64,
    );
    for i in 0..u64::from(n) {
        prog_a.push(Op::Store {
            va: in_q.descriptor.element_va(i),
            value: 0x1_0000 + i,
        });
    }
    prog_a.push(Op::Fence);
    prog_a.push(Op::Store {
        va: in_q.descriptor.write_index_va,
        value: u64::from(n),
    });

    // Process B: pop through its own mapping and release the read index.
    let mut prog_b = Program::new();
    for j in 0..u64::from(n) {
        prog_b.push(Op::WaitGe {
            va: out_q_b.descriptor.write_index_va,
            value: j + 1,
        });
        prog_b.push(Op::Load {
            va: out_q_b.descriptor.element_va(j),
            record: true,
        });
    }
    prog_b.push(Op::Store {
        va: out_q_b.descriptor.read_index_va,
        value: u64::from(n),
    });
    prog_b.push(Op::Fence);

    let mut core_a = InOrderCore::new(dir, &cfg, prog_a);
    core_a.set_translator(Box::new(space_a.translator()));
    let core_a = soc.add_component(TileCoord::new(0, 1), Box::new(core_a));
    let mut core_b = InOrderCore::new(dir, &cfg, prog_b);
    core_b.set_translator(Box::new(space_b.translator()));
    let core_b = soc.add_component(TileCoord::new(0, 2), Box::new(core_b));

    let engine = CohortEngine::new(dir, &cfg, ENGINE_MMIO, core_a, 7, Box::new(NullFifo::new()));
    let engine = soc.add_component(TileCoord::new(1, 0), Box::new(engine));
    soc.map_mmio(ENGINE_MMIO..ENGINE_MMIO + regs::BANK_BYTES, engine);

    let out = soc.run(10_000_000);
    assert!(out.quiescent, "stuck at cycle {}", out.cycle);
    let b = soc.component::<InOrderCore>(core_b).unwrap();
    let expect: Vec<u64> = (0..u64::from(n)).map(|i| 0x1_0000 + i).collect();
    assert_eq!(
        b.recorded(),
        &expect[..],
        "process B sees A's data via the engine"
    );
    let a = soc.component::<InOrderCore>(core_a).unwrap();
    assert!(a.is_done());
}
