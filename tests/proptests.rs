//! Property-style tests over the core data structures and invariants.
//!
//! These were originally written with `proptest`; to keep the workspace
//! building fully offline they now use a deterministic splitmix64 case
//! generator ([`Rng`]) with a fixed seed per property — every run explores
//! the same case set, so failures are trivially reproducible.

use cohort_accel::aes128::Aes128;
use cohort_accel::h264::bits::{BitReader, BitWriter};
use cohort_accel::h264::cavlc::{decode_block, encode_block};
use cohort_accel::h264::encoder::{decode_macroblock, H264Encoder, MB_BYTES};
use cohort_accel::ratchet::Ratchet;
use cohort_accel::sha256::{sha256, Sha256};
use cohort_os::frame::FrameAllocator;
use cohort_os::sv39::{self, pte_flags, PageSize};
use cohort_queue::mpsc::mpsc_channel;
use cohort_queue::typed::{typed, QueueElement};
use cohort_queue::{spsc_channel, QueueLayout};
use cohort_sim::mem::PhysMem;

const CASES: u64 = 64;

/// Deterministic splitmix64 generator used to synthesise test cases.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    fn array<const N: usize>(&mut self) -> [u8; N] {
        let mut a = [0u8; N];
        for b in &mut a {
            *b = self.next_u64() as u8;
        }
        a
    }
}

/// The SPSC queue behaves exactly like a FIFO under any interleaving of
/// pushes, pops, staged pushes and publications.
#[test]
fn spsc_matches_model() {
    let mut rng = Rng::new(0x5b5c);
    for _ in 0..CASES {
        let cap = rng.range(1, 16) as usize;
        let n_ops = rng.range(1, 200);
        let (mut tx, mut rx) = spsc_channel::<u64>(cap);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut staged: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for _ in 0..n_ops {
            match rng.range(0, 5) {
                0 => {
                    if tx.stage(next).is_ok() {
                        staged.push(next);
                        next += 1;
                    } else {
                        assert!(model.len() + staged.len() >= cap);
                    }
                }
                1 => {
                    tx.publish();
                    model.extend(staged.drain(..));
                }
                2 => {
                    if tx.push(next).is_ok() {
                        model.extend(staged.drain(..));
                        model.push_back(next);
                        next += 1;
                    }
                }
                _ => {
                    assert_eq!(rx.pop(), model.pop_front());
                }
            }
        }
        tx.publish();
        model.extend(staged.drain(..));
        while let Some(expect) = model.pop_front() {
            assert_eq!(rx.pop(), Some(expect));
        }
        assert_eq!(rx.pop(), None);
    }
}

/// Bytes pushed through a ratchet come out identical in order.
#[test]
fn ratchet_roundtrip() {
    let mut rng = Rng::new(0x4a7c);
    for _ in 0..CASES {
        let len = rng.range(0, 512) as usize;
        let data = rng.bytes(len);
        let block = rng.range(1, 96) as usize;
        let mut r = Ratchet::new(block);
        r.push_bytes(&data);
        let mut out = Vec::new();
        while let Some(b) = r.pop_block() {
            out.extend(b);
        }
        assert_eq!(&out[..], &data[..out.len()]);
        assert!(
            data.len() - out.len() < block,
            "at most a partial block retained"
        );
        if let Some(tail) = r.flush_padded() {
            assert_eq!(&tail[..data.len() - out.len()], &data[out.len()..]);
        }
    }
}

/// Any quantized 4x4 coefficient block survives the CAVLC encoder + decoder
/// byte-exactly.
#[test]
fn cavlc_roundtrip() {
    let mut rng = Rng::new(0xca01);
    for _ in 0..CASES {
        let block: [i32; 16] = core::array::from_fn(|_| rng.range(0, 6000) as i32 - 3000);
        let mut w = BitWriter::new();
        encode_block(&mut w, &block);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = decode_block(&mut r).expect("decodes");
        assert_eq!(decoded, block);
    }
}

/// Exp-Golomb ue/se codes round-trip arbitrary sequences.
#[test]
fn exp_golomb_roundtrip() {
    let mut rng = Rng::new(0xe601);
    for _ in 0..CASES {
        let values: Vec<i32> = (0..rng.range(0, 64))
            .map(|_| rng.next_u64() as u32 as i32)
            .collect();
        let mut w = BitWriter::new();
        for &v in &values {
            if v >= 0 {
                w.put_ue(v as u32);
            } else {
                w.put_se(v);
            }
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            if v >= 0 {
                assert_eq!(r.get_ue().unwrap(), v as u32);
            } else {
                assert_eq!(r.get_se().unwrap(), v);
            }
        }
    }
}

/// AES decrypt inverts encrypt for arbitrary keys and blocks.
#[test]
fn aes_roundtrip() {
    let mut rng = Rng::new(0xae5);
    for _ in 0..CASES {
        let key: [u8; 16] = rng.array();
        let block: [u8; 16] = rng.array();
        let aes = Aes128::new(&key);
        assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }
}

/// SHA-256 streaming is split-invariant.
#[test]
fn sha_split_invariance() {
    let mut rng = Rng::new(0x5a);
    for _ in 0..CASES {
        let len = rng.range(0, 300) as usize;
        let data = rng.bytes(len);
        let split = (rng.range(0, 300) as usize).min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sha256(&data));
    }
}

/// H.264 macroblock decode reproduces the encoder's reconstruction for
/// arbitrary content and QP.
#[test]
fn h264_decoder_matches_encoder() {
    let mut rng = Rng::new(0x264);
    for _ in 0..CASES {
        let qp = rng.range(0, 52) as u8;
        let mut x = rng.next_u64() as u32;
        let mb: [u8; MB_BYTES] = core::array::from_fn(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 24) as u8
        });
        let enc = H264Encoder::new(qp);
        let (bits, recon) = enc.encode_macroblock(&mb);
        let decoded = decode_macroblock(&bits).expect("decodes");
        assert_eq!(decoded, recon);
    }
}

/// Sv39: for any set of disjoint 4 KiB mappings, the walker agrees with the
/// mapping and unmapped addresses fault.
#[test]
fn sv39_walk_agrees_with_mappings() {
    let mut rng = Rng::new(0x539);
    for _ in 0..CASES {
        let mut pages = std::collections::BTreeSet::new();
        for _ in 0..rng.range(1, 24) {
            pages.insert(rng.range(0, 512));
        }
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(0x100_0000, 0x800_0000);
        let root = frames.alloc();
        let mut expect = std::collections::HashMap::new();
        for &p in &pages {
            let va = 0x4000_0000 + p * 4096;
            let pa = frames.alloc();
            sv39::map(
                &mut mem,
                root,
                va,
                pa,
                PageSize::Base,
                pte_flags::DATA,
                || frames.alloc(),
            );
            expect.insert(va, pa);
        }
        for &p in &pages {
            let va = 0x4000_0000 + p * 4096;
            let r = sv39::walk(&mem, root, va + 123).expect("mapped");
            assert_eq!(r.pa, expect[&va] + 123);
        }
        // An address beyond the mapped window faults.
        assert!(sv39::walk(&mem, root, 0x4000_0000 + 600 * 4096).is_none());
    }
}

/// Queue layouts never alias: indices and data are on disjoint lines and
/// the descriptor validates, for any power-of-two geometry; non-power-of-two
/// lengths are rejected by descriptor validation.
#[test]
fn queue_layout_invariants() {
    let mut rng = Rng::new(0x1a07);
    for _ in 0..CASES {
        let elem_words = rng.range(1, 16) as u32;
        let len = 1u32 << rng.range(0, 10);
        let layout = QueueLayout::standard(0x10_000, elem_words * 8, len);
        let d = layout.descriptor;
        assert!(d.validate().is_ok());
        assert!(d.base_va >= layout.region_start);
        assert!(d.base_va + d.data_bytes() <= layout.region_end());
        assert_ne!(d.write_index_va / 64, d.read_index_va / 64);

        // Any non-power-of-two length fails fallible construction.
        let bad_len = rng.range(3, 512) as u32;
        if !bad_len.is_power_of_two() {
            assert!(cohort_queue::QueueDescriptor::try_new(
                0x10_000,
                0x10_040,
                0x10_080,
                elem_words * 8,
                bad_len,
            )
            .is_err());
        }
    }
}

/// The MPSC queue under a single producer behaves like a FIFO for any
/// push/pop interleaving.
#[test]
fn mpsc_single_producer_matches_model() {
    let mut rng = Rng::new(0x355c);
    for _ in 0..CASES {
        let cap = rng.range(2, 16) as usize;
        let n_ops = rng.range(1, 200);
        let (tx, mut rx) = mpsc_channel::<u64>(cap);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for _ in 0..n_ops {
            if rng.range(0, 2) == 0 {
                match tx.push(next) {
                    Ok(()) => {
                        model.push_back(next);
                        next += 1;
                    }
                    Err(_) => assert_eq!(model.len(), cap),
                }
            } else {
                assert_eq!(rx.pop(), model.pop_front());
            }
        }
        while let Some(e) = model.pop_front() {
            assert_eq!(rx.pop(), Some(e));
        }
        assert_eq!(rx.pop(), None);
    }
}

/// Typed queue elements round-trip over word queues for any content.
#[test]
fn typed_wide_roundtrip() {
    let mut rng = Rng::new(0x717e);
    for _ in 0..CASES {
        let values: Vec<[u64; 4]> = (0..rng.range(0, 16))
            .map(|_| core::array::from_fn(|_| rng.next_u64()))
            .collect();
        let (p, c) = spsc_channel::<u64>(256);
        let (mut tx, mut rx) = typed::<[u64; 4]>(p, c);
        for v in &values {
            tx.push(*v).unwrap();
        }
        for v in &values {
            assert_eq!(rx.pop(), Some(*v));
        }
        assert_eq!(rx.pop(), None);
        assert_eq!(<[u64; 4] as QueueElement>::WORDS, 4);
    }
}

/// HMAC keys longer than a block hash down to the same MAC as their digest
/// used directly (RFC 2104 key preprocessing).
#[test]
fn hmac_long_key_equivalence() {
    use cohort_accel::hmac::hmac_sha256;
    let mut rng = Rng::new(0x6ac);
    for _ in 0..CASES {
        let key_len = rng.range(65, 128) as usize;
        let key = rng.bytes(key_len);
        let data_len = rng.range(0, 64) as usize;
        let data = rng.bytes(data_len);
        let direct = hmac_sha256(&key, &data);
        let via_digest = hmac_sha256(&sha256(&key), &data);
        assert_eq!(direct, via_digest);
    }
}

/// AES-CTR encryption is an involution for any key/counter/payload.
#[test]
fn aes_ctr_involution() {
    use cohort_accel::aesctr::ctr_xor;
    let mut rng = Rng::new(0xc7);
    for _ in 0..CASES {
        let key: [u8; 16] = rng.array();
        let ctr: [u8; 16] = rng.array();
        let len = rng.range(0, 128) as usize;
        let data = rng.bytes(len);
        let cipher = Aes128::new(&key);
        let mut buf = data.clone();
        ctr_xor(&cipher, &ctr, &mut buf);
        ctr_xor(&cipher, &ctr, &mut buf);
        assert_eq!(buf, data);
    }
}

/// The fault grammar is total over arbitrary token soup: `FaultPlan::parse`
/// either accepts or returns a structured [`FaultSpecError`] — it never
/// panics — and every accepted plan schedules deterministically. This is
/// the same parser behind `socrun --faults` and the fleet spec loader's
/// `faults =` key, so a panic here would wedge both front ends.
#[test]
fn fault_grammar_is_total() {
    use cohort_sim::faultinject::FaultPlan;
    let tokens = [
        "stall",
        "spike",
        "storm",
        "corrupt",
        "kill",
        "maple-stall",
        "maple-kill",
        "random",
        "@",
        ":",
        ";",
        ",",
        "=",
        "|",
        "forever",
        "seed",
        "count",
        "from",
        "to",
        "0",
        "1",
        "60000",
        "18446744073709551615",
        "0x10",
        "-3",
        " ",
        "banana",
    ];
    let mut rng = Rng::new(0xfa01);
    for _ in 0..(CASES * 8) {
        let n = rng.range(0, 14) as usize;
        let mut spec = String::new();
        for _ in 0..n {
            spec.push_str(tokens[rng.range(0, tokens.len() as u64) as usize]);
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => {
                // Scheduling is a pure function of the plan: two calls
                // agree event for event.
                assert_eq!(plan.schedule(), plan.schedule());
            }
            Err(e) => assert!(!e.to_string().is_empty(), "silent error for {spec:?}"),
        }
    }
}

/// Well-formed fault specs generated from the grammar always parse, and
/// the scheduled event count matches what was written (random entries
/// expand to exactly `count` events inside their window).
#[test]
fn fault_grammar_accepts_generated_specs() {
    use cohort_sim::faultinject::FaultPlan;
    let mut rng = Rng::new(0xfa02);
    for _ in 0..CASES {
        let n_events = rng.range(1, 8);
        let mut entries = Vec::new();
        for _ in 0..n_events {
            let c = rng.range(1, 1 << 30);
            entries.push(match rng.range(0, 5) {
                0 => format!("stall@{c}:{}", rng.range(1, 10_000)),
                1 => format!("spike@{c}:{}:{}", rng.range(1, 10_000), rng.range(2, 16)),
                2 => format!("storm@{c}:{}", rng.range(1, 32)),
                3 => format!("corrupt@{c}"),
                _ => format!("kill@{c}:{}", rng.range(0, 4)),
            });
        }
        let count = rng.range(1, 16);
        let from = rng.range(0, 1 << 20);
        let to = from + rng.range(1, 1 << 20);
        let with_random = rng.range(0, 2) == 0;
        if with_random {
            entries.push(format!(
                "random:seed={},count={count},from={from},to={to}",
                rng.next_u64() >> 1
            ));
        }
        let spec = entries.join("; ");
        let plan = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("generated spec rejected: {spec:?}: {e}"));
        let scheduled = plan.schedule();
        let expect = n_events + if with_random { count } else { 0 };
        assert_eq!(scheduled.len() as u64, expect, "spec {spec:?}");
        // The schedule is sorted by cycle, and random draws respect
        // their window.
        assert!(scheduled.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        if with_random {
            let fixed: std::collections::HashSet<u64> = (0..n_events)
                .map(|i| entries[i as usize].split('@').nth(1).unwrap())
                .map(|s| s.split([':', '|']).next().unwrap().parse().unwrap())
                .collect();
            for ev in scheduled.iter().filter(|e| !fixed.contains(&e.at_cycle)) {
                assert!(
                    (from..to).contains(&ev.at_cycle),
                    "random event at {} outside [{from}, {to}) in {spec:?}",
                    ev.at_cycle
                );
            }
        }
    }
}

/// PhysMem reads always return what was last written, across page
/// boundaries.
#[test]
fn physmem_write_read() {
    let mut rng = Rng::new(0x3e3);
    for _ in 0..CASES {
        let mut mem = PhysMem::new();
        let mut model = std::collections::HashMap::new();
        for _ in 0..rng.range(1, 64) {
            let addr = rng.range(0, 20_000) & !7; // aligned words for the model
            let value = rng.next_u64();
            mem.write_u64(addr, value);
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            assert_eq!(mem.read_u64(addr), value);
        }
    }
}

/// A probe component that sends a benign message to its peer at each of a
/// pre-scheduled, sorted list of cycles and records the cycle at which
/// every inbound message arrives. Its lookahead hint is exactly the model:
/// quiescent until the next scheduled send.
struct ScheduledSender {
    peer: cohort_sim::component::CompId,
    sends: std::collections::VecDeque<u64>,
    received_at: Vec<u64>,
}

impl cohort_sim::component::Component for ScheduledSender {
    fn name(&self) -> &str {
        "sched-sender"
    }

    fn step(&mut self, ctx: &mut cohort_sim::component::Ctx<'_>) {
        while let Some(env) = ctx.recv() {
            if let cohort_sim::msg::Msg::MmioWriteResp { .. } = env.msg {
                self.received_at.push(ctx.cycle);
            }
        }
        while self.sends.front().is_some_and(|&c| c <= ctx.cycle) {
            let c = self.sends.pop_front().expect("front checked");
            ctx.send(self.peer, cohort_sim::msg::Msg::MmioWriteResp { tag: c });
        }
    }

    fn is_idle(&self) -> bool {
        self.sends.is_empty()
    }

    fn quiescent_for(&self, now: u64) -> u64 {
        self.sends
            .front()
            .map_or(u64::MAX, |&c| c.saturating_sub(now).max(1))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds a fuzzed probe SoC: two [`ScheduledSender`]s pinging each other
/// at random cycles plus (sometimes) a fuzzed fault plan driven by a real
/// [`cohort_sim::faultinject::FaultInjector`]. Returns the SoC and the
/// sorted union of *model event cycles*: every scheduled send and every
/// fault-plan entry. Deliveries and component reactions can only occur at
/// or after these cycles, so the lookahead horizon must never jump past
/// the next one.
fn fuzzed_probe_soc(
    rng: &mut Rng,
    lookahead: cohort_sim::config::Lookahead,
) -> (cohort_sim::soc::Soc, Vec<u64>) {
    use cohort_sim::component::{CompId, TileCoord};
    use cohort_sim::faultinject::{FaultInjector, FaultKind, FaultPlan};

    let sched = |rng: &mut Rng| -> std::collections::VecDeque<u64> {
        let n = rng.range(1, 10) as usize;
        let mut v: Vec<u64> = (0..n).map(|_| rng.range(1, 1_500)).collect();
        v.sort_unstable();
        v.dedup();
        v.into()
    };
    let a = sched(rng);
    let b = sched(rng);

    let mut plan = FaultPlan::default();
    for _ in 0..rng.range(0, 4) {
        let at = rng.range(1, 1_500);
        let kind = match rng.range(0, 4) {
            0 => FaultKind::AccelStall {
                cycles: rng.range(1, 400),
            },
            1 => FaultKind::LatencySpike {
                cycles: rng.range(1, 400),
                factor: rng.range(2, 6),
            },
            2 => FaultKind::PageFaultStorm {
                pages: rng.range(1, 4),
            },
            _ => FaultKind::CorruptDescriptor,
        };
        plan = plan.at(at, kind);
    }

    let mut events: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
    events.extend(plan.schedule().iter().map(|e| e.at_cycle));
    events.sort_unstable();
    events.dedup();

    let cfg = cohort_sim::config::SocConfig::default()
        .with_faults(plan.clone())
        .with_lookahead(lookahead);
    let mut soc = cohort_sim::soc::Soc::new(cfg);
    soc.add_component(
        TileCoord::new(0, 0),
        Box::new(ScheduledSender {
            peer: CompId(1),
            sends: a,
            received_at: Vec::new(),
        }),
    );
    soc.add_component(
        TileCoord::new(1, 0),
        Box::new(ScheduledSender {
            peer: CompId(0),
            sends: b,
            received_at: Vec::new(),
        }),
    );
    if !plan.is_empty() {
        let inj = FaultInjector::new(&plan, soc.fault_state().clone());
        soc.add_component(TileCoord::new(2, 0), Box::new(inj));
    }
    (soc, events)
}

/// The DRAM channel queues honour their configured bound under arbitrary
/// request streams: observable occupancy never exceeds `queue_depth`, a
/// rejection's retry cycle is in the future and really has a free slot,
/// and `next_event` agrees exactly with a mirror of the accepted
/// completion set (the hint can never skip a bank event).
#[test]
fn dram_queue_depth_never_exceeds_bound() {
    use cohort_sim::dram::{DramConfig, DramModel};

    let mut rng = Rng::new(0xd7a1);
    for _ in 0..CASES {
        let channels = rng.range(1, 4);
        let queue = rng.range(1, 6) as usize;
        let hit = rng.range(1, 30);
        let miss = hit + rng.range(0, 60);
        let spec = format!(
            "channels={channels},banks={},rowlines={},hit={hit},miss={miss},queue={queue}",
            rng.range(1, 4),
            rng.range(1, 8),
        );
        let mut m = DramModel::new(DramConfig::from_spec(&spec).expect("generated spec parses"));
        let mut outstanding: Vec<u64> = Vec::new();
        let mut at = 0u64;
        for _ in 0..400 {
            at += rng.range(0, 12);
            let line = rng.range(0, 64) * cohort_sim::LINE_BYTES;
            match m.enqueue(at, line) {
                Ok(done) => {
                    assert!(done > at, "completion in the past: at={at} done={done}");
                    outstanding.push(done);
                }
                Err(retry) => {
                    assert!(
                        retry > at,
                        "retry must be in the future: at={at} retry={retry}"
                    );
                    // At the retry cycle one slot is guaranteed free.
                    at = retry;
                    let done = m.enqueue(at, line).expect("slot freed at retry cycle");
                    outstanding.push(done);
                }
            }
            for ch in 0..channels as usize {
                let d = m.depth(ch, at);
                assert!(d <= queue, "channel {ch} depth {d} exceeds bound {queue}");
            }
            let expect = outstanding.iter().copied().filter(|&d| d > at).min();
            assert_eq!(m.next_event(at), expect, "hint diverged from the model");
        }
    }
}

/// A probe that requests read-shared lines from the directory at
/// pre-scheduled cycles and records when the data grants arrive. It also
/// acknowledges invalidations/downgrades so directory recalls never
/// wedge. Like [`ScheduledSender`], its hint is exactly the model.
struct DramRequester {
    dir: cohort_sim::component::CompId,
    /// `(cycle, line)` pairs, sorted by cycle.
    sends: std::collections::VecDeque<(u64, u64)>,
    received_at: Vec<u64>,
}

impl cohort_sim::component::Component for DramRequester {
    fn name(&self) -> &str {
        "dram-requester"
    }

    fn step(&mut self, ctx: &mut cohort_sim::component::Ctx<'_>) {
        use cohort_sim::msg::Msg;
        while let Some(env) = ctx.recv() {
            match env.msg {
                Msg::DataS { .. } | Msg::DataM { .. } => self.received_at.push(ctx.cycle),
                Msg::Inv { line } => ctx.send(self.dir, Msg::InvAck { line }),
                Msg::Downgrade { line } => ctx.send(self.dir, Msg::DowngradeAck { line }),
                _ => {}
            }
        }
        while self.sends.front().is_some_and(|&(c, _)| c <= ctx.cycle) {
            let (_, line) = self.sends.pop_front().expect("front checked");
            ctx.send(self.dir, cohort_sim::msg::Msg::GetS { line });
        }
    }

    fn is_idle(&self) -> bool {
        self.sends.is_empty()
    }

    fn quiescent_for(&self, now: u64) -> u64 {
        self.sends
            .front()
            .map_or(u64::MAX, |&(c, _)| c.saturating_sub(now).max(1))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A deliberately starved DRAM geometry so short fuzzed runs still hit
/// channel-queue rejects, MSHR waits and NoC ejection deferrals.
const DRAM_FUZZ_SPEC: &str = "channels=1,banks=2,queue=2,miss=60,mshrs=4,ejection=1";

/// Builds a fuzzed SoC with the DRAM contention model enabled: a real
/// [`cohort_sim::directory::Directory`] plus two [`DramRequester`]s
/// issuing `GetS` for distinct lines at random cycles. Returns the SoC,
/// the directory's id, and the sorted union of scheduled request cycles.
fn fuzzed_dram_soc(
    rng: &mut Rng,
    lookahead: cohort_sim::config::Lookahead,
    threads: usize,
) -> (
    cohort_sim::soc::Soc,
    cohort_sim::component::CompId,
    Vec<u64>,
) {
    use cohort_sim::component::TileCoord;

    let dram = cohort_sim::dram::DramConfig::from_spec(DRAM_FUZZ_SPEC).expect("fuzz spec parses");
    let cfg = cohort_sim::config::SocConfig::default()
        .with_dram(dram)
        .with_lookahead(lookahead)
        .with_threads(threads);
    let mut soc = cohort_sim::soc::Soc::new(cfg.clone());
    let dir = soc.add_component(
        TileCoord::new(0, 0),
        Box::new(cohort_sim::directory::Directory::new(&cfg)),
    );
    let mut all_sends: Vec<u64> = Vec::new();
    let mut next_line = 0u64;
    for p in 0..2u16 {
        let n = rng.range(4, 24) as usize;
        let mut cycles: Vec<u64> = (0..n).map(|_| rng.range(1, 1_200)).collect();
        cycles.sort_unstable();
        cycles.dedup();
        // Distinct lines per request, so every grant needs a DRAM fill.
        let sends: std::collections::VecDeque<(u64, u64)> = cycles
            .iter()
            .map(|&c| {
                let line = next_line * cohort_sim::LINE_BYTES;
                next_line += 1;
                (c, line)
            })
            .collect();
        all_sends.extend(cycles);
        soc.add_component(
            TileCoord::new(1 + p, 0),
            Box::new(DramRequester {
                dir,
                sends,
                received_at: Vec::new(),
            }),
        );
    }
    all_sends.sort_unstable();
    all_sends.dedup();
    (soc, dir, all_sends)
}

/// With the contention model enabled, the lookahead horizon never
/// overshoots the next DRAM bank event: every accepted fill's completion
/// (and every full-queue retry) lives in the directory's delayed heap, so
/// its `quiescent_for` hint — and therefore the global horizon — is
/// bounded by the distance to [`cohort_sim::dram::DramModel::next_event`].
#[test]
fn dram_hints_never_overshoot_bank_events() {
    use cohort_sim::directory::Directory;

    let mut rng = Rng::new(0xd7a3);
    let mut saw_dram_bound = false;
    for _ in 0..CASES {
        let (mut soc, dir, sends) =
            fuzzed_dram_soc(&mut rng, cohort_sim::config::Lookahead::Auto, 1);
        let deadline = 6_000u64;
        while soc.cycle < deadline {
            let now = soc.cycle;
            let h = soc.lookahead_horizon(deadline);
            assert!(h >= 1, "horizon must always make progress");
            let dram_next = soc
                .component::<Directory>(dir)
                .expect("directory slot")
                .dram_model()
                .expect("dram enabled")
                .next_event(now);
            if let Some(next) = dram_next {
                assert!(
                    h <= next - now,
                    "horizon overshot a bank event: now={now} h={h} next={next}"
                );
                saw_dram_bound = true;
            }
            if let Some(&next) = sends.iter().find(|&&e| e >= now) {
                assert!(
                    h <= (next - now).max(1),
                    "horizon overshot a scheduled request: now={now} h={h} next={next}"
                );
            }
            soc.step();
        }
    }
    assert!(
        saw_dram_bound,
        "no case ever had an outstanding DRAM request — the bound went untested"
    );
}

/// With DRAM enabled, forced cycle-by-cycle stepping, automatic lookahead
/// batching, and a second worker thread are all observationally
/// equivalent: same end state, same per-cycle grant deliveries, same
/// directory/DRAM counters. The kernel invariant
/// `barriers + ff_cycles == cycles` holds on the batched runs, and across
/// the case set the starved geometry must actually exercise fills,
/// channel-queue rejects and MSHR waits.
#[test]
fn dram_lookahead_modes_and_thread_counts_agree() {
    use cohort_sim::component::{CompId, Component as _};
    use cohort_sim::config::Lookahead;
    use cohort_sim::directory::Directory;

    let run = |seed: u64, lookahead: Lookahead, threads: usize| {
        let mut rng = Rng::new(seed);
        let (mut soc, dir, _) = fuzzed_dram_soc(&mut rng, lookahead, threads);
        let outcome = soc.run(20_000);
        let deliveries: Vec<Vec<u64>> = [CompId(1), CompId(2)]
            .iter()
            .map(|&id| {
                soc.component::<DramRequester>(id)
                    .expect("probe slot")
                    .received_at
                    .clone()
            })
            .collect();
        let d = soc.component::<Directory>(dir).expect("directory slot");
        let counters: Vec<(String, u64)> = d.counters();
        let ff = soc.kernel_counter("kernel.ff_cycles");
        let barriers = soc.kernel_counter("kernel.barrier_activations");
        (outcome, deliveries, counters, ff, barriers, soc.cycle)
    };

    let (mut skipped_any, mut rejected_any, mut stalled_any) = (false, false, false);
    for case in 0..CASES {
        let seed = 0xd7a7 + case;
        let f1 = run(seed, Lookahead::Force1, 1);
        let auto = run(seed, Lookahead::Auto, 1);
        let auto2 = run(seed, Lookahead::Auto, 2);
        assert_eq!(f1.3, 0, "Force1 must never fast-forward");
        for other in [&auto, &auto2] {
            assert_eq!(
                (&f1.0, &f1.1, &f1.2),
                (&other.0, &other.1, &other.2),
                "observable state diverged between modes (seed {seed:#x})"
            );
        }
        assert_eq!(
            auto.4 + auto.3,
            auto.5,
            "barriers + ff_cycles != cycles (seed {seed:#x})"
        );
        let counter = |name: &str| {
            auto.2
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        assert!(
            counter("fills") > 0,
            "no DRAM fills issued (seed {seed:#x})"
        );
        skipped_any |= auto.3 > 0;
        rejected_any |= counter("dram_rejects") > 0;
        stalled_any |= counter("mshr_stalls") > 0;
    }
    assert!(skipped_any, "auto lookahead never batched a single cycle");
    assert!(rejected_any, "no case ever filled a DRAM channel queue");
    assert!(stalled_any, "no case ever exhausted the directory MSHRs");
}

/// The conservative lookahead horizon never overshoots the next model
/// event: for fuzzed send schedules and fault plans, at every cycle the
/// horizon is bounded by the distance to the next scheduled send or fault
/// entry. In-flight NoC deliveries and component hints may only *shrink*
/// the horizon below that bound, never stretch it past an event.
#[test]
fn lookahead_horizon_never_overshoots_model_events() {
    let mut rng = Rng::new(0x10ca);
    for _ in 0..CASES {
        let (mut soc, events) = fuzzed_probe_soc(&mut rng, cohort_sim::config::Lookahead::Auto);
        let deadline = 2_000u64;
        while soc.cycle < deadline {
            let now = soc.cycle;
            let h = soc.lookahead_horizon(deadline);
            assert!(h >= 1, "horizon must always make progress");
            if let Some(&next) = events.iter().find(|&&e| e >= now) {
                let bound = (next - now).max(1);
                assert!(
                    h <= bound,
                    "horizon overshot: now={now} h={h} next model event at {next}"
                );
            }
            soc.step();
        }
    }
}

/// Forced cycle-by-cycle stepping and automatic lookahead batching are
/// observationally equivalent on fuzzed scenarios: same stop cycle, same
/// quiescence verdict, and — the strong claim — every message is
/// delivered at exactly the same simulated cycle.
#[test]
fn lookahead_modes_agree_on_fuzzed_scenarios() {
    use cohort_sim::component::CompId;
    use cohort_sim::config::Lookahead;

    let run = |seed: u64, lookahead: Lookahead| {
        let mut rng = Rng::new(seed);
        let (mut soc, _) = fuzzed_probe_soc(&mut rng, lookahead);
        let outcome = soc.run(4_000);
        let deliveries: Vec<Vec<u64>> = [CompId(0), CompId(1)]
            .iter()
            .map(|&id| {
                soc.component::<ScheduledSender>(id)
                    .expect("probe slot")
                    .received_at
                    .clone()
            })
            .collect();
        let ff = soc.kernel_counter("kernel.ff_cycles");
        (outcome, deliveries, ff)
    };

    let mut skipped_any = false;
    for case in 0..CASES {
        let seed = 0xd0d0 + case;
        let (out_f1, del_f1, ff_f1) = run(seed, Lookahead::Force1);
        let (out_auto, del_auto, ff_auto) = run(seed, Lookahead::Auto);
        assert_eq!(ff_f1, 0, "Force1 must never fast-forward");
        assert_eq!(
            out_f1, out_auto,
            "run outcome diverged between lookahead modes (seed {seed:#x})"
        );
        assert_eq!(
            del_f1, del_auto,
            "message delivery cycles diverged between lookahead modes (seed {seed:#x})"
        );
        skipped_any |= ff_auto > 0;
    }
    assert!(
        skipped_any,
        "auto lookahead never skipped a cycle across the whole case set — \
         the batching path went untested"
    );
}
