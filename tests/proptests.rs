//! Property-based tests over the core data structures and invariants.

use cohort_accel::aes128::Aes128;
use cohort_accel::h264::bits::{BitReader, BitWriter};
use cohort_accel::h264::cavlc::{decode_block, encode_block};
use cohort_accel::h264::encoder::{decode_macroblock, H264Encoder, MB_BYTES};
use cohort_accel::ratchet::Ratchet;
use cohort_accel::sha256::{sha256, Sha256};
use cohort_os::frame::FrameAllocator;
use cohort_os::sv39::{self, pte_flags, PageSize};
use cohort_queue::mpsc::mpsc_channel;
use cohort_queue::typed::{typed, QueueElement};
use cohort_queue::{spsc_channel, QueueLayout};
use cohort_sim::mem::PhysMem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SPSC queue behaves exactly like a FIFO under any interleaving
    /// of pushes, pops, staged pushes and publications.
    #[test]
    fn spsc_matches_model(ops in prop::collection::vec(0u8..5, 1..200), cap in 1usize..16) {
        let (mut tx, mut rx) = spsc_channel::<u64>(cap);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut staged: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                0 => {
                    // stage
                    if tx.stage(next).is_ok() {
                        staged.push(next);
                        next += 1;
                    } else {
                        prop_assert!(model.len() + staged.len() >= cap);
                    }
                }
                1 => {
                    // publish
                    tx.publish();
                    model.extend(staged.drain(..));
                }
                2 => {
                    // push (stage + publish)
                    if tx.push(next).is_ok() {
                        model.extend(staged.drain(..));
                        model.push_back(next);
                        next += 1;
                    }
                }
                _ => {
                    // pop
                    let got = rx.pop();
                    prop_assert_eq!(got, model.pop_front());
                }
            }
        }
        tx.publish();
        model.extend(staged.drain(..));
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expect));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    /// Bytes pushed through a ratchet come out identical in order.
    #[test]
    fn ratchet_roundtrip(data in prop::collection::vec(any::<u8>(), 0..512), block in 1usize..96) {
        let mut r = Ratchet::new(block);
        r.push_bytes(&data);
        let mut out = Vec::new();
        while let Some(b) = r.pop_block() {
            out.extend(b);
        }
        prop_assert_eq!(&out[..], &data[..out.len()]);
        prop_assert!(data.len() - out.len() < block, "at most a partial block retained");
        if let Some(tail) = r.flush_padded() {
            prop_assert_eq!(&tail[..data.len() - out.len()], &data[out.len()..]);
        }
    }

    /// Any quantized 4x4 coefficient block survives the CAVLC encoder +
    /// decoder byte-exactly.
    #[test]
    fn cavlc_roundtrip(levels in prop::collection::vec(-3000i32..3000, 16)) {
        let block: [i32; 16] = levels.try_into().unwrap();
        let mut w = BitWriter::new();
        encode_block(&mut w, &block);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = decode_block(&mut r).expect("decodes");
        prop_assert_eq!(decoded, block);
    }

    /// Exp-Golomb ue/se codes round-trip arbitrary sequences.
    #[test]
    fn exp_golomb_roundtrip(values in prop::collection::vec(any::<i32>(), 0..64)) {
        let mut w = BitWriter::new();
        for &v in &values {
            if v >= 0 {
                w.put_ue(v as u32);
            } else {
                w.put_se(v);
            }
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            if v >= 0 {
                prop_assert_eq!(r.get_ue().unwrap(), v as u32);
            } else {
                prop_assert_eq!(r.get_se().unwrap(), v);
            }
        }
    }

    /// AES decrypt inverts encrypt for arbitrary keys and blocks.
    #[test]
    fn aes_roundtrip(key in prop::array::uniform16(any::<u8>()), block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    /// SHA-256 streaming is split-invariant.
    #[test]
    fn sha_split_invariance(data in prop::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// H.264 macroblock decode reproduces the encoder's reconstruction
    /// for arbitrary content and QP.
    #[test]
    fn h264_decoder_matches_encoder(seed in any::<u32>(), qp in 0u8..52) {
        let mut x = seed;
        let mb: [u8; MB_BYTES] = core::array::from_fn(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 24) as u8
        });
        let enc = H264Encoder::new(qp);
        let (bits, recon) = enc.encode_macroblock(&mb);
        let decoded = decode_macroblock(&bits).expect("decodes");
        prop_assert_eq!(decoded, recon);
    }

    /// Sv39: for any set of disjoint 4 KiB mappings, the walker agrees
    /// with the mapping and unmapped addresses fault.
    #[test]
    fn sv39_walk_agrees_with_mappings(pages in prop::collection::btree_set(0u64..512, 1..24)) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(0x100_0000, 0x800_0000);
        let root = frames.alloc();
        let mut expect = std::collections::HashMap::new();
        for &p in &pages {
            let va = 0x4000_0000 + p * 4096;
            let pa = frames.alloc();
            sv39::map(&mut mem, root, va, pa, PageSize::Base, pte_flags::DATA, || frames.alloc());
            expect.insert(va, pa);
        }
        for &p in &pages {
            let va = 0x4000_0000 + p * 4096;
            let r = sv39::walk(&mem, root, va + 123).expect("mapped");
            prop_assert_eq!(r.pa, expect[&va] + 123);
        }
        // An address beyond the mapped window faults.
        prop_assert!(sv39::walk(&mem, root, 0x4000_0000 + 600 * 4096).is_none());
    }

    /// Queue layouts never alias: indices and data are on disjoint lines
    /// and the descriptor validates, for any geometry.
    #[test]
    fn queue_layout_invariants(elem_words in 1u32..16, len in 1u32..512) {
        let layout = QueueLayout::standard(0x10_000, elem_words * 8, len);
        let d = layout.descriptor;
        prop_assert!(d.validate().is_ok());
        prop_assert!(d.base_va >= layout.region_start);
        prop_assert!(d.base_va + d.data_bytes() <= layout.region_end());
        prop_assert_ne!(d.write_index_va / 64, d.read_index_va / 64);
    }

    /// The MPSC queue under a single producer behaves like a FIFO for any
    /// push/pop interleaving.
    #[test]
    fn mpsc_single_producer_matches_model(ops in prop::collection::vec(any::<bool>(), 1..200), cap in 2usize..16) {
        let (tx, mut rx) = mpsc_channel::<u64>(cap);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for push in ops {
            if push {
                match tx.push(next) {
                    Ok(()) => {
                        model.push_back(next);
                        next += 1;
                    }
                    Err(_) => prop_assert_eq!(model.len(), cap),
                }
            } else {
                prop_assert_eq!(rx.pop(), model.pop_front());
            }
        }
        while let Some(e) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(e));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    /// Typed queue elements round-trip over word queues for any content.
    #[test]
    fn typed_wide_roundtrip(values in prop::collection::vec(prop::array::uniform4(any::<u64>()), 0..16)) {
        let (p, c) = spsc_channel::<u64>(256);
        let (mut tx, mut rx) = typed::<[u64; 4]>(p, c);
        for v in &values {
            tx.push(*v).unwrap();
        }
        for v in &values {
            prop_assert_eq!(rx.pop(), Some(*v));
        }
        prop_assert_eq!(rx.pop(), None);
        prop_assert_eq!(<[u64; 4] as QueueElement>::WORDS, 4);
    }

    /// HMAC keys longer than a block hash down to the same MAC as their
    /// digest used directly (RFC 2104 key preprocessing).
    #[test]
    fn hmac_long_key_equivalence(key in prop::collection::vec(any::<u8>(), 65..128), data in prop::collection::vec(any::<u8>(), 0..64)) {
        use cohort_accel::hmac::hmac_sha256;
        use cohort_accel::sha256::sha256;
        let direct = hmac_sha256(&key, &data);
        let via_digest = hmac_sha256(&sha256(&key), &data);
        prop_assert_eq!(direct, via_digest);
    }

    /// AES-CTR encryption is an involution for any key/counter/payload.
    #[test]
    fn aes_ctr_involution(key in prop::array::uniform16(any::<u8>()), ctr in prop::array::uniform16(any::<u8>()), data in prop::collection::vec(any::<u8>(), 0..128)) {
        use cohort_accel::aes128::Aes128;
        use cohort_accel::aesctr::ctr_xor;
        let cipher = Aes128::new(&key);
        let mut buf = data.clone();
        ctr_xor(&cipher, &ctr, &mut buf);
        ctr_xor(&cipher, &ctr, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// PhysMem reads always return what was last written, across page
    /// boundaries.
    #[test]
    fn physmem_write_read(ops in prop::collection::vec((0u64..20_000, any::<u64>()), 1..64)) {
        let mut mem = PhysMem::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, value) in &ops {
            let addr = addr & !7; // aligned words for the model
            mem.write_u64(addr, value);
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            prop_assert_eq!(mem.read_u64(addr), value);
        }
    }
}
