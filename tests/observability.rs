//! End-to-end checks of the observability layer: a traced crypto run must
//! yield a stats-registry snapshot with per-level cache counters, NoC
//! counters, and engine backoff/TLB counters, plus a Chrome `trace_event`
//! JSON document (the format Perfetto and `chrome://tracing` load).

use cohort::scenarios::{run_cohort, Scenario, Workload};

/// Pulls `"key":value` (or `"key":{...}` presence) out of the hand-rolled
/// JSON without a parser dependency.
fn has_key(json: &str, key: &str) -> bool {
    json.contains(&format!("\"{key}\""))
}

fn counter_value(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[test]
fn traced_crypto_run_produces_stats_and_trace_json() {
    let mut scenario = Scenario::new(Workload::Aes, 128, 8);
    scenario.trace = true;
    let r = run_cohort(&scenario);
    assert!(r.verified);

    // Stats registry: cache hit/miss per level, NoC, engine backoff + TLB.
    let stats = &r.stats_json;
    for key in [
        "core#1.l1.hits",
        "core#1.l1.misses",
        "directory#0.l2_hits",
        "directory#0.fills",
        "noc.delivered",
        "noc.flits",
        "cohort-engine#2.backoffs",
        "cohort-engine#2.tlb_hits",
        "cohort-engine#2.tlb_misses",
    ] {
        assert!(has_key(stats, key), "stats missing {key}: {stats}");
    }
    assert!(has_key(stats, "noc.hop_latency"), "hop-latency histogram");
    assert!(
        has_key(stats, "cohort-engine#2.in_queue_occupancy"),
        "queue-occupancy histogram"
    );
    let consumed = counter_value(stats, "cohort-engine#2.consumed");
    assert_eq!(consumed, Some(128), "engine consumed all inputs: {stats}");
    assert!(counter_value(stats, "noc.delivered").unwrap() > 0);
    assert!(counter_value(stats, "core#1.l1.hits").unwrap() > 0);

    // Trace: Chrome trace_event JSON with NoC flights, coherence instants
    // and engine state-machine spans.
    let trace = r.trace_json.as_deref().expect("trace enabled").trim();
    assert!(trace.starts_with('{') && trace.ends_with('}'));
    assert!(has_key(trace, "traceEvents"));
    for needle in [
        "\"ph\": \"X\"", // complete events
        "\"ph\": \"i\"", // coherence instants
        "\"ph\": \"M\"", // thread-name metadata
        "\"cat\": \"noc\"",
        "\"cat\": \"coherence\"",
        "\"cat\": \"engine\"",
        "\"name\": \"cons:", // consumer state spans
        "\"name\": \"prod:", // producer state spans
    ] {
        assert!(trace.contains(needle), "trace missing {needle}");
    }
}

#[test]
fn untraced_run_has_stats_but_no_trace() {
    let r = run_cohort(&Scenario::new(Workload::Sha, 64, 8));
    assert!(r.verified);
    assert!(r.trace_json.is_none());
    // Stats are always collected — tracing off does not disable counters.
    assert!(counter_value(&r.stats_json, "cohort-engine#2.consumed").unwrap() > 0);
}
