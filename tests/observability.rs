//! End-to-end checks of the observability layer: a traced crypto run must
//! yield a stats-registry snapshot with per-level cache counters, NoC
//! counters, and engine backoff/TLB counters, plus a Chrome `trace_event`
//! JSON document (the format Perfetto and `chrome://tracing` load).

use cohort::scenarios::{run_cohort, Scenario, Workload};

/// Pulls `"key":value` (or `"key":{...}` presence) out of the hand-rolled
/// JSON without a parser dependency.
fn has_key(json: &str, key: &str) -> bool {
    json.contains(&format!("\"{key}\""))
}

fn counter_value(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[test]
fn traced_crypto_run_produces_stats_and_trace_json() {
    let mut scenario = Scenario::new(Workload::Aes, 128, 8);
    scenario.trace = true;
    let r = run_cohort(&scenario);
    assert!(r.verified);

    // Stats registry: cache hit/miss per level, NoC, engine backoff + TLB.
    let stats = &r.stats_json;
    for key in [
        "core#1.l1.hits",
        "core#1.l1.misses",
        "directory#0.l2_hits",
        "directory#0.fills",
        "noc.delivered",
        "noc.flits",
        "engine#0.backoffs",
        "engine#0.tlb_hits",
        "engine#0.tlb_misses",
    ] {
        assert!(has_key(stats, key), "stats missing {key}: {stats}");
    }
    assert!(has_key(stats, "noc.hop_latency"), "hop-latency histogram");
    assert!(
        has_key(stats, "engine#0.in_queue_occupancy"),
        "queue-occupancy histogram"
    );
    let consumed = counter_value(stats, "engine#0.consumed");
    assert_eq!(consumed, Some(128), "engine consumed all inputs: {stats}");
    assert!(counter_value(stats, "noc.delivered").unwrap() > 0);
    assert!(counter_value(stats, "core#1.l1.hits").unwrap() > 0);

    // Trace: Chrome trace_event JSON with NoC flights, coherence instants
    // and engine state-machine spans.
    let trace = r.trace_json.as_deref().expect("trace enabled").trim();
    assert!(trace.starts_with('{') && trace.ends_with('}'));
    assert!(has_key(trace, "traceEvents"));
    for needle in [
        "\"ph\": \"X\"", // complete events
        "\"ph\": \"i\"", // coherence instants
        "\"ph\": \"M\"", // thread-name metadata
        "\"cat\": \"noc\"",
        "\"cat\": \"coherence\"",
        "\"cat\": \"engine\"",
        "\"name\": \"cons:", // consumer state spans
        "\"name\": \"prod:", // producer state spans
    ] {
        assert!(trace.contains(needle), "trace missing {needle}");
    }
}

/// Regression test for the multi-engine stats-scope collision: with two
/// engines in one SoC, each must publish under its own `engine#<id>` scope
/// — distinct keys, both present, neither adopted into the other.
#[test]
fn two_engine_soc_has_distinct_stats_scopes() {
    use cohort::scenarios::{run_cohort_sharded, ShardSpec};
    use cohort_sim::config::SocConfig;

    let mut scenario = Scenario::new(Workload::Aes, 128, 8);
    scenario.soc = SocConfig::default().with_engines(2);
    let r = run_cohort_sharded(&scenario, &ShardSpec::new(2)).expect("pool binds");
    assert!(r.verified);
    for scope in ["engine#0", "engine#1"] {
        for key in ["consumed", "backoffs", "tlb_hits"] {
            assert!(
                has_key(&r.stats_json, &format!("{scope}.{key}")),
                "stats missing {scope}.{key}"
            );
        }
    }
    // Both engines consumed a share of the stream, and the scoped keys are
    // truly per-engine: the two consumed counts sum to the whole stream.
    let c0 = counter_value(&r.stats_json, "engine#0.consumed").unwrap();
    let c1 = counter_value(&r.stats_json, "engine#1.consumed").unwrap();
    assert!(c0 > 0 && c1 > 0, "both engines should have consumed");
    assert_eq!(c0 + c1, 128, "scoped counters must not alias");
}

#[test]
fn untraced_run_has_stats_but_no_trace() {
    let r = run_cohort(&Scenario::new(Workload::Sha, 64, 8));
    assert!(r.verified);
    assert!(r.trace_json.is_none());
    // Stats are always collected — tracing off does not disable counters.
    assert!(counter_value(&r.stats_json, "engine#0.consumed").unwrap() > 0);
}
