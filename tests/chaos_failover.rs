//! End-to-end fail-stop failover tests (docs/architecture.md §8).
//!
//! The failover contract: a fail-stop kill of a chained engine
//! mid-pipeline must heal onto the cold spare with **zero lost or
//! duplicated elements** — the recorded digest stream is bit-identical
//! to a fault-free run — and the whole path must be deterministic under
//! a fixed seed. MAPLE (the decoupled access-execute baseline) has a
//! weaker contract: a fail-stop there must surface as a clean reported
//! error, never a hang.

use cohort::scenarios::{
    run_cohort_chain, run_cohort_chain_failover, run_dma_chaos, RunResult, Scenario, Workload,
};
use cohort_maple::DEAD_SENTINEL;
use cohort_sim::config::SocConfig;
use cohort_sim::faultinject::{FaultKind, FaultPlan, FOREVER};

/// Order-sensitive payload checksum.
fn checksum(words: &[u64]) -> u64 {
    words.iter().fold(0u64, |acc, &w| acc.rotate_left(7) ^ w)
}

/// Sums a named counter across every component whose name starts with
/// `prefix` (a chain run has several `engine#N` components).
fn summed_counter(r: &RunResult, prefix: &str, name: &str) -> u64 {
    r.counters
        .iter()
        .filter(|(c, _)| c.starts_with(prefix))
        .flat_map(|(_, list)| list.iter())
        .filter(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .sum()
}

/// Extracts a histogram's sample count from the stats-registry JSON.
/// `name` is matched as a suffix of the scoped registry key, so
/// `failover_rebind` finds `engine#2.failover_rebind`.
fn hist_count(stats_json: &str, name: &str) -> u64 {
    let needle = format!("{name}\": {{\"count\": ");
    let mut total = 0u64;
    let mut rest = stats_json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        total += digits.parse::<u64>().unwrap_or(0);
    }
    total
}

/// The standard failover scenario: a chain long enough that the default
/// mid-pipeline kill (cycle 20 000) lands with work still in flight, and
/// a watchdog short enough to keep detection latency reasonable.
fn failover_scenario() -> Scenario {
    let mut s = Scenario::new(Workload::Sha, 256, 16);
    s.watchdog = 20_000;
    s
}

#[test]
fn chain_failover_heals_onto_spare_with_exact_digests() {
    let r = run_cohort_chain_failover(&failover_scenario());
    assert!(
        r.verified,
        "digest stream must match the host reference despite the kill"
    );

    // The kill was actually taken and detected, and exactly one rebind
    // happened (onto the spare).
    assert_eq!(summed_counter(&r, "faultinject", "kills"), 1);
    assert!(
        summed_counter(&r, "engine#", "watchdog_trips") >= 1,
        "wedge detected"
    );
    assert_eq!(
        summed_counter(&r, "engine#", "rebinds"),
        1,
        "one migration onto the spare"
    );
}

#[test]
fn chain_failover_loses_and_duplicates_nothing_vs_fault_free_run() {
    let healthy = run_cohort_chain(&Scenario::new(Workload::Sha, 256, 16));
    let failed_over = run_cohort_chain_failover(&failover_scenario());
    assert!(healthy.verified && failed_over.verified);
    assert_eq!(
        failed_over.recorded.len(),
        healthy.recorded.len(),
        "no lost or extra elements"
    );
    assert_eq!(
        checksum(&failed_over.recorded),
        checksum(&healthy.recorded),
        "exactly-once migration: the output stream is bit-identical"
    );
    assert!(
        failed_over.cycles >= healthy.cycles,
        "failover may cost cycles, never correctness"
    );
}

#[test]
fn chain_failover_is_bit_identical_across_same_seed_runs() {
    let a = run_cohort_chain_failover(&failover_scenario());
    let b = run_cohort_chain_failover(&failover_scenario());
    assert!(a.verified && b.verified);
    assert_eq!(a.cycles, b.cycles, "same seed, same cycle count");
    assert_eq!(checksum(&a.recorded), checksum(&b.recorded));
    assert_eq!(
        a.stats_json, b.stats_json,
        "whole stats snapshot must be identical"
    );
}

#[test]
fn failover_latency_histograms_are_populated() {
    let r = run_cohort_chain_failover(&failover_scenario());
    assert!(r.verified);
    // Detect (kill → watchdog trip), rebind (IRQ T0 → spare enable) and
    // resume (IRQ T0 → first element produced on the spare) each record
    // exactly one failover.
    assert_eq!(hist_count(&r.stats_json, "failover_detect"), 1);
    assert_eq!(hist_count(&r.stats_json, "failover_rebind"), 1);
    assert_eq!(hist_count(&r.stats_json, "failover_resume"), 1);
    // The dead-engine error IRQ is cycle-stamped end to end.
    assert!(hist_count(&r.stats_json, "error_irq_latency") >= 1);
}

#[test]
fn maple_kill_reports_clean_error_instead_of_hanging() {
    let mut s = Scenario::new(Workload::Sha, 64, 8);
    s.soc = SocConfig::default().with_faults(FaultPlan::default().at(15_000, FaultKind::KillMaple));
    // The run must terminate (asserted inside run_dma_chaos) and the
    // fault must be visible to software as the DMA_DONE sentinel.
    let r = run_dma_chaos(&s);
    assert!(!r.verified, "a killed MAPLE cannot produce the full output");
    assert!(
        r.recorded.contains(&DEAD_SENTINEL),
        "software sees the dead-unit sentinel on DMA_DONE: {:?}",
        r.recorded
    );
    assert_eq!(
        r.counter("maple", "fail_stops"),
        Some(1),
        "exactly one fail-stop abort latched"
    );
}

#[test]
fn maple_finite_stall_only_delays_completion() {
    let mut s = Scenario::new(Workload::Sha, 64, 8);
    // A long stall straddling the first transfer, so the delay is visible
    // regardless of how the per-block kernel costs interleave.
    s.soc = SocConfig::default()
        .with_faults(FaultPlan::default().at(500, FaultKind::MapleStall { cycles: 30_000 }));
    let r = run_dma_chaos(&s);
    let clean = run_dma_chaos(&Scenario::new(Workload::Sha, 64, 8));
    assert!(r.verified, "a stalled MAPLE is still a correct MAPLE");
    assert!(clean.verified);
    assert_eq!(r.counter("maple", "fail_stops"), Some(0));
    assert!(
        r.cycles > clean.cycles,
        "the stall must actually cost cycles"
    );
}

#[test]
fn maple_forever_stall_is_a_hang_but_kill_is_not() {
    // Deliberate contrast: an infinite stall with no dead-man sentinel
    // wedges DMA forever, which is why the fail-stop class exists. We
    // only check the *kill* path here — same cycle, but the unit answers.
    let mut s = Scenario::new(Workload::Sha, 64, 8);
    s.soc = SocConfig::default().with_faults(
        FaultPlan::default()
            .at(15_000, FaultKind::MapleStall { cycles: FOREVER })
            .at(25_000, FaultKind::KillMaple),
    );
    let r = run_dma_chaos(&s);
    assert!(!r.verified);
    assert!(
        r.recorded.contains(&DEAD_SENTINEL),
        "the kill unblocks the stalled access"
    );
}
