//! End-to-end fault-injection recovery tests.
//!
//! The recovery contract (docs/architecture.md §7): every fault class must
//! end in completion with the exact fault-free output, or a clean reported
//! error state — never a deadlock, never a panic. These tests drive each
//! class through [`cohort::scenarios::run_cohort_chaos`], which arms the
//! whole stack: watchdog, swap-backed fault handler, storm hook, and the
//! bounded-retry error handler with a software fallback.

use cohort::scenarios::{run_cohort, run_cohort_chaos, RunResult, Scenario, Workload};
use cohort_sim::config::SocConfig;
use cohort_sim::faultinject::{FaultKind, FaultPlan, RandomFaults, FOREVER};

/// A small SHA chaos scenario carrying `plan`.
fn chaos_scenario(plan: FaultPlan) -> Scenario {
    let mut s = Scenario::new(Workload::Sha, 64, 8);
    s.soc = SocConfig::default().with_faults(plan);
    s
}

/// Order-sensitive payload checksum.
fn checksum(words: &[u64]) -> u64 {
    words.iter().fold(0u64, |acc, &w| acc.rotate_left(7) ^ w)
}

fn engine_counter(r: &RunResult, name: &str) -> u64 {
    r.counter("engine", name)
        .unwrap_or_else(|| panic!("missing counter {name}"))
}

/// Extracts a histogram's sample count from the stats-registry JSON,
/// summed over every scoped key ending in `name`.
fn hist_count(stats_json: &str, name: &str) -> u64 {
    let needle = format!("{name}\": {{\"count\": ");
    let mut total = 0u64;
    let mut rest = stats_json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        total += digits.parse::<u64>().unwrap_or(0);
    }
    total
}

#[test]
fn finite_stall_recovers_without_watchdog_trip() {
    let plan = FaultPlan::default().at(5_000, FaultKind::AccelStall { cycles: 3_000 });
    let r = run_cohort_chaos(&chaos_scenario(plan));
    assert!(r.verified, "finite stall must not corrupt output");
    assert_eq!(
        engine_counter(&r, "watchdog_trips"),
        0,
        "stall shorter than the watchdog"
    );
    assert_eq!(engine_counter(&r, "error_irqs"), 0);
}

#[test]
fn infinite_stall_trips_watchdog_and_degrades_to_software() {
    let mut s =
        chaos_scenario(FaultPlan::default().at(5_000, FaultKind::AccelStall { cycles: FOREVER }));
    s.watchdog = 20_000; // detect the wedge quickly
    let r = run_cohort_chaos(&s);
    assert!(
        r.verified,
        "software fallback must reproduce the full digest stream"
    );
    assert!(
        engine_counter(&r, "watchdog_trips") >= 1,
        "the wedge must be detected"
    );
    assert!(engine_counter(&r, "error_irqs") >= 1, "and reported");
}

#[test]
fn corrupted_descriptor_is_rejected_and_recovered() {
    let plan = FaultPlan::default().at(8_000, FaultKind::CorruptDescriptor);
    let r = run_cohort_chaos(&chaos_scenario(plan));
    assert!(
        r.verified,
        "corruption must be rejected, then worked around"
    );
    assert!(
        engine_counter(&r, "error_irqs") >= 1,
        "bad descriptor must raise the error IRQ"
    );
}

#[test]
fn page_fault_storm_output_matches_fault_free_run() {
    let plan = FaultPlan::default()
        .at(6_000, FaultKind::PageFaultStorm { pages: 2 })
        .at(20_000, FaultKind::PageFaultStorm { pages: 3 });
    let scenario = chaos_scenario(plan);
    let stormy = run_cohort_chaos(&scenario);
    let clean = run_cohort(&Scenario::new(Workload::Sha, 64, 8));
    assert!(stormy.verified && clean.verified);
    assert_eq!(
        checksum(&stormy.recorded),
        checksum(&clean.recorded),
        "storm recovery must be data-lossless"
    );
    assert!(
        stormy.cycles >= clean.cycles,
        "faults may cost cycles, never correctness"
    );
}

#[test]
fn latency_spike_completes_with_correct_output() {
    let plan = FaultPlan::default().at(
        3_000,
        FaultKind::LatencySpike {
            cycles: 5_000,
            factor: 8,
        },
    );
    let r = run_cohort_chaos(&chaos_scenario(plan));
    assert!(r.verified, "a slow NoC is still a correct NoC");
}

#[test]
fn seeded_random_plan_is_deterministic_across_runs() {
    let make = || {
        let plan = FaultPlan::default()
            .at(4_000, FaultKind::AccelStall { cycles: 2_000 })
            .with_random(RandomFaults {
                seed: 0xC0FFEE,
                count: 4,
                from: 10_000,
                to: 60_000,
            });
        let mut s = chaos_scenario(plan);
        s.watchdog = 30_000;
        s
    };
    let a = run_cohort_chaos(&make());
    let b = run_cohort_chaos(&make());
    assert!(a.verified && b.verified);
    assert_eq!(a.cycles, b.cycles, "same seed, same cycle count");
    assert_eq!(checksum(&a.recorded), checksum(&b.recorded));
    assert_eq!(
        a.stats_json, b.stats_json,
        "whole stats snapshot must be identical"
    );
}

#[test]
fn error_irq_latency_is_measured_end_to_end() {
    let plan = FaultPlan::default().at(8_000, FaultKind::CorruptDescriptor);
    let r = run_cohort_chaos(&chaos_scenario(plan));
    assert!(r.verified);
    let irqs = engine_counter(&r, "error_irqs");
    assert!(irqs >= 1);
    // Every error IRQ's latch→handler-completion span lands in the
    // histogram, whether the handler resumed or disabled the engine.
    assert!(
        hist_count(&r.stats_json, "error_irq_latency") >= irqs,
        "every error IRQ must close a latency span: {}",
        r.stats_json
    );
}

#[test]
fn retry_budget_resets_after_each_successful_recovery() {
    // Three watchdog-tripping stalls separated by healthy progress. The
    // per-incident retry budget is 2: without the forward-progress reset
    // the third incident would inherit an exhausted counter and
    // needlessly fall back to software. With it, every incident is
    // recovered in hardware and the engine produces the full stream.
    let plan = FaultPlan::default()
        .at(4_000, FaultKind::AccelStall { cycles: 15_000 })
        .at(22_000, FaultKind::AccelStall { cycles: 15_000 })
        .at(40_000, FaultKind::AccelStall { cycles: 15_000 });
    let mut s = chaos_scenario(plan);
    s.watchdog = 10_000; // each stall overruns the budget exactly once
    let r = run_cohort_chaos(&s);
    assert!(r.verified);
    assert!(
        engine_counter(&r, "watchdog_trips") >= 3,
        "all three wedges detected"
    );
    assert_eq!(
        engine_counter(&r, "resumes"),
        engine_counter(&r, "error_irqs"),
        "every incident recovered by an ERROR_STATUS clear, none by fallback"
    );
    assert_eq!(
        engine_counter(&r, "produced"),
        r.recorded.len() as u64,
        "the hardware engine, not the software fallback, produced every element"
    );
}

#[test]
fn chaos_transitions_are_visible_in_the_trace() {
    let mut s =
        chaos_scenario(FaultPlan::default().at(5_000, FaultKind::AccelStall { cycles: FOREVER }));
    s.watchdog = 20_000;
    s.trace = true;
    let r = run_cohort_chaos(&s);
    assert!(r.verified);
    let trace = r.trace_json.expect("tracing enabled");
    assert!(trace.contains("fault:stall"), "injection instant present");
    assert!(
        trace.contains("watchdog_trip"),
        "watchdog trip instant present"
    );
    assert!(trace.contains("error_irq"), "error IRQ instant present");
}
