//! Integration tests for the driver-level queue sharder: determinism,
//! merge-order correctness, failover composition, scaling, and the
//! placement-policy separation the pool exists to provide.

use cohort::scenarios::{run_cohort_sharded, RunResult, Scenario, ShardSpec, Workload};
use cohort_os::driver::Placement;
use cohort_queue::SeqMerge;
use cohort_sim::config::SocConfig;
use cohort_sim::faultinject::{splitmix64, FaultKind, FaultPlan};

fn sharded(qs: u64, engines: usize, spec: &ShardSpec) -> RunResult {
    let mut scenario = Scenario::new(Workload::Aes, qs, 64);
    scenario.soc = SocConfig::default().with_engines(engines);
    let r = run_cohort_sharded(&scenario, spec).expect("pool binds");
    assert!(r.verified, "sharded run failed verification");
    r
}

/// Sums one counter across every engine in the pool.
fn summed_engine_counter(r: &RunResult, name: &str) -> u64 {
    r.counters
        .iter()
        .filter(|(c, _)| c.starts_with("engine#"))
        .flat_map(|(_, l)| l.iter().filter(|(n, _)| n == name).map(|(_, v)| *v))
        .sum()
}

/// Same seed, same spec: the sharded run is bit-identical — cycle count,
/// recorded output stream, and the full stats snapshot.
#[test]
fn sharded_run_is_deterministic() {
    let spec = ShardSpec::new(4).with_placement(Placement::OccupancyAware);
    let a = sharded(1024, 4, &spec);
    let b = sharded(1024, 4, &spec);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.recorded, b.recorded);
    assert_eq!(a.stats_json, b.stats_json);
}

/// The sequence-tagged merge restores global FIFO order under arbitrary
/// cross-shard interleavings: shards drain in splitmix64-random order,
/// each preserving only its own FIFO, and the merged stream must come out
/// 0..n in order, every trial.
#[test]
fn merge_restores_order_under_random_interleavings() {
    let mut rng = 0xdead_beef_u64;
    for trial in 0..64 {
        let shards = 2 + (trial % 7) as usize;
        let n = 1 + (splitmix64(&mut rng) % 200);
        // Global stream 0..n, split across shards; each shard keeps its
        // elements in seq order (per-shard FIFO).
        let mut queues: Vec<std::collections::VecDeque<u64>> =
            vec![std::collections::VecDeque::new(); shards];
        for seq in 0..n {
            let s = (splitmix64(&mut rng) % shards as u64) as usize;
            queues[s].push_back(seq);
        }
        let mut merge = SeqMerge::new();
        let mut out = Vec::new();
        while queues.iter().any(|q| !q.is_empty()) {
            let s = (splitmix64(&mut rng) % shards as u64) as usize;
            if let Some(seq) = queues[s].pop_front() {
                merge.push(seq, seq).expect("fresh seq");
                out.extend(merge.drain_ready().into_iter().map(|(_, v)| v));
            }
        }
        assert!(merge.is_drained(), "trial {trial}: merge left residue");
        assert_eq!(out, (0..n).collect::<Vec<_>>(), "trial {trial}: order lost");
    }
}

/// Fail-stopping a shard engine mid-stream heals through the epoch-fenced
/// failover path: the shard's queues migrate onto the spare exactly once
/// and the merged digest is still correct.
#[test]
fn shard_kill_heals_via_failover_with_correct_digest() {
    let mut scenario = Scenario::new(Workload::Aes, 1024, 64);
    scenario.soc = SocConfig::default()
        .with_engines(5)
        .with_faults(FaultPlan::default().at(20_000, FaultKind::KillEngine { engine: 1 }));
    let r = run_cohort_sharded(&scenario, &ShardSpec::new(4)).expect("pool binds");
    assert!(r.verified, "digest wrong after shard failover");
    assert_eq!(summed_engine_counter(&r, "rebinds"), 1);
    assert_eq!(summed_engine_counter(&r, "watchdog_trips"), 1);
}

/// The tentpole scaling claim: four shards deliver at least 2.5x the
/// throughput of one shard on the same seed and stream.
#[test]
fn four_shards_scale_at_least_2_5x() {
    let one = sharded(2048, 1, &ShardSpec::new(1));
    let four = sharded(2048, 4, &ShardSpec::new(4));
    let speedup = one.cycles as f64 / four.cycles as f64;
    assert!(
        speedup >= 2.5,
        "4-shard speedup {speedup:.3} < 2.5 ({} vs {} cycles)",
        one.cycles,
        four.cycles
    );
}

/// On the skewed (periodic heavy element) variant, occupancy-aware
/// steering beats blind round-robin — the heavy runs collide on one
/// engine under round-robin and spread under load-aware placement.
#[test]
fn occupancy_placement_beats_round_robin_on_skew() {
    let rr = sharded(1024, 4, &ShardSpec::new(4).with_skew(true));
    let occ = sharded(
        1024,
        4,
        &ShardSpec::new(4)
            .with_placement(Placement::OccupancyAware)
            .with_skew(true),
    );
    assert!(
        occ.cycles < rr.cycles,
        "occupancy-aware ({}) should beat round-robin ({}) on skewed runs",
        occ.cycles,
        rr.cycles
    );
}

/// Each engine in a sharded pool reports occupancy under its own scope:
/// the histogram keys are distinct per engine and all present.
#[test]
fn sharded_run_reports_per_engine_occupancy() {
    let r = sharded(256, 2, &ShardSpec::new(2));
    for s in 0..2 {
        let h = r
            .histogram(&format!("engine#{s}.in_queue_occupancy"))
            .unwrap_or_else(|| panic!("engine#{s} occupancy histogram missing"));
        assert!(h.count > 0);
    }
}
