//! Integration tests of the native (thread-based) Cohort runtime: stress,
//! multi-stage chains, every accelerator type behind the queue interface.

use cohort::native::{cohort_register, pop_blocking, push_blocking};
use cohort_accel::aes128::{Aes128, Aes128Accel};
use cohort_accel::h264::{decode_stream, H264Accel, MB_BYTES};
use cohort_accel::nullfifo::NullFifo;
use cohort_accel::sha256::{sha256_raw_block, Sha256Accel};
use cohort_accel::stft::StftAccel;
use cohort_queue::{spsc_channel, BatchConsumer, BatchProducer};
use std::thread;

#[test]
fn null_fifo_stress_many_words() {
    let (tx, acc_in) = spsc_channel::<u64>(32);
    let (acc_out, rx) = spsc_channel::<u64>(32);
    let h = cohort_register(Box::new(NullFifo::new()), acc_in, acc_out, None);
    let n = 50_000u64;
    let producer = thread::spawn(move || {
        let mut tx = tx;
        for i in 0..n {
            push_blocking(&mut tx, i);
        }
    });
    let mut rx = rx;
    for i in 0..n {
        assert_eq!(pop_blocking(&mut rx), i);
    }
    producer.join().unwrap();
    let stats = h.unregister();
    assert_eq!(stats.words_in, n);
    assert_eq!(stats.words_out, n);
}

#[test]
fn batched_producer_through_accelerator() {
    // The software batching optimisation composes with the accelerator
    // thread: publications every 32 elements, one consumer.
    let (tx, acc_in) = spsc_channel::<u64>(256);
    let (acc_out, rx) = spsc_channel::<u64>(256);
    let h = cohort_register(Box::new(NullFifo::new()), acc_in, acc_out, None);
    let mut btx = BatchProducer::new(tx, 32);
    let mut brx = BatchConsumer::new(rx, 32);
    let mut seen = 0u64;
    for i in 0..10_000u64 {
        loop {
            match btx.push(i) {
                Ok(()) => break,
                Err(_) => {
                    // The ring is full: drain completions AND release the
                    // partial batch so the accelerator can make progress
                    // (otherwise the closed loop of full rings livelocks
                    // on the deferred read-index release).
                    while let Some(v) = brx.pop() {
                        assert_eq!(v, seen);
                        seen += 1;
                    }
                    brx.flush();
                    std::thread::yield_now();
                }
            }
        }
        while let Some(v) = brx.pop() {
            assert_eq!(v, seen);
            seen += 1;
        }
    }
    btx.flush();
    while seen < 10_000 {
        if let Some(v) = brx.pop() {
            assert_eq!(v, seen);
            seen += 1;
        } else {
            brx.flush();
            std::thread::yield_now();
        }
    }
    h.unregister();
}

#[test]
fn three_stage_chain_aes_null_sha() {
    // AES -> null FIFO -> SHA: a three-engine cohort.
    let key = *b"three stage key!";
    let (mut tx, q1c) = spsc_channel::<u64>(512);
    let (q2p, q2c) = spsc_channel::<u64>(512);
    let (q3p, q3c) = spsc_channel::<u64>(512);
    let (q4p, mut rx) = spsc_channel::<u64>(512);
    let h1 = cohort_register(Box::new(Aes128Accel::new()), q1c, q2p, Some(key.to_vec()));
    let h2 = cohort_register(Box::new(NullFifo::new()), q2c, q3p, None);
    let h3 = cohort_register(Box::new(Sha256Accel::new()), q3c, q4p, None);

    let pt: Vec<u8> = (0..128u32).map(|i| (i * 13 % 256) as u8).collect();
    for chunk in pt.chunks_exact(8) {
        push_blocking(&mut tx, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut digests = Vec::new();
    for _ in 0..(pt.len() / 64) * 4 {
        digests.extend_from_slice(&pop_blocking(&mut rx).to_le_bytes());
    }

    let aes = Aes128::new(&key);
    let mut ct = Vec::new();
    for b in pt.chunks_exact(16) {
        ct.extend_from_slice(&aes.encrypt_block(b.try_into().unwrap()));
    }
    let mut expect = Vec::new();
    for b in ct.chunks_exact(64) {
        expect.extend_from_slice(&sha256_raw_block(b.try_into().unwrap()));
    }
    assert_eq!(digests, expect);
    h1.unregister();
    h2.unregister();
    h3.unregister();
}

#[test]
fn stft_through_queues() {
    let n = 256usize;
    let (mut tx, acc_in) = spsc_channel::<u64>(512);
    let (acc_out, mut rx) = spsc_channel::<u64>(512);
    let h = cohort_register(Box::new(StftAccel::new(n)), acc_in, acc_out, Some(vec![0]));
    // One frame: a pure tone at bin 8.
    let samples: Vec<i16> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            ((2.0 * std::f64::consts::PI * 8.0 * t).cos() * 12000.0) as i16
        })
        .collect();
    let bytes: Vec<u8> = samples.iter().flat_map(|s| s.to_le_bytes()).collect();
    for chunk in bytes.chunks_exact(8) {
        push_blocking(&mut tx, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut out = Vec::new();
    for _ in 0..(4 * n) / 8 {
        out.extend_from_slice(&pop_blocking(&mut rx).to_le_bytes());
    }
    let mag = |k: usize| {
        let re = i16::from_le_bytes([out[4 * k], out[4 * k + 1]]) as f64;
        let im = i16::from_le_bytes([out[4 * k + 2], out[4 * k + 3]]) as f64;
        (re * re + im * im).sqrt()
    };
    let peak = mag(8);
    assert!(
        peak > 4.0 * mag(3),
        "tone must dominate: peak {peak} vs {}",
        mag(3)
    );
    h.unregister();
}

#[test]
fn h264_through_queues_roundtrips() {
    let (mut tx, acc_in) = spsc_channel::<u64>(1024);
    let (acc_out, mut rx) = spsc_channel::<u64>(1024);
    let h = cohort_register(Box::new(H264Accel::new()), acc_in, acc_out, Some(vec![6]));
    let frames: Vec<[u8; MB_BYTES]> = (0..4)
        .map(|f| core::array::from_fn(|i| ((i * 5 + f * 31) % 256) as u8))
        .collect();
    push_blocking(&mut tx, frames.len() as u64);
    for frame in &frames {
        for chunk in frame.chunks_exact(8) {
            push_blocking(&mut tx, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
    }
    // Collect until all frames parse (the stream is word-padded per frame).
    let mut stream = Vec::new();
    let mut decoded = Vec::new();
    while decoded.len() < frames.len() {
        stream.extend_from_slice(&pop_blocking(&mut rx).to_le_bytes());
        decoded = parse_padded(&stream);
    }
    assert_eq!(decoded.len(), frames.len());
    h.unregister();
}

fn parse_padded(stream: &[u8]) -> Vec<[u8; MB_BYTES]> {
    let mut unpadded = Vec::new();
    let mut rest = stream;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let padded = (4 + len).div_ceil(8) * 8;
        if rest.len() < padded {
            break;
        }
        unpadded.extend_from_slice(&rest[..4 + len]);
        rest = &rest[padded..];
    }
    decode_stream(&unpadded).unwrap_or_default()
}

#[test]
fn reconfiguration_replaces_accelerator_between_runs() {
    // Runtime reconfiguration (§4.5): same logical pipeline position, new
    // accelerator after unregister.
    let (mut tx1, in1) = spsc_channel::<u64>(64);
    let (out1, mut rx1) = spsc_channel::<u64>(64);
    let h = cohort_register(Box::new(NullFifo::new()), in1, out1, None);
    push_blocking(&mut tx1, 7);
    assert_eq!(pop_blocking(&mut rx1), 7);
    h.unregister();

    let (mut tx2, in2) = spsc_channel::<u64>(64);
    let (out2, mut rx2) = spsc_channel::<u64>(64);
    let h2 = cohort_register(Box::new(Sha256Accel::new()), in2, out2, None);
    for w in 0..8u64 {
        push_blocking(&mut tx2, w);
    }
    let mut digest = Vec::new();
    for _ in 0..4 {
        digest.extend_from_slice(&pop_blocking(&mut rx2).to_le_bytes());
    }
    let mut block = [0u8; 64];
    for (i, chunk) in block.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&(i as u64).to_le_bytes());
    }
    assert_eq!(digest, sha256_raw_block(&block).to_vec());
    h2.unregister();
}
