//! Integration tests for the extension scenarios: arbitrary accelerators
//! through the simulated engine (STFT, null FIFO) and multicore
//! interference.

use cohort::scenarios::{run_cohort, run_cohort_interfered, CustomRun, Scenario, Workload};
use cohort_accel::nullfifo::NullFifo;
use cohort_accel::stft::StftAccel;
use cohort_accel::Accelerator;

fn words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[test]
fn stft_through_the_simulated_engine() {
    // One 256-sample frame of a two-tone signal through the Cohort engine;
    // expectation computed by the functional model on the host.
    let n = 256usize;
    let samples: Vec<i16> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let s = (2.0 * std::f64::consts::PI * 5.0 * t).sin() * 9000.0
                + (2.0 * std::f64::consts::PI * 21.0 * t).cos() * 5000.0;
            s as i16
        })
        .collect();
    let input_bytes: Vec<u8> = samples.iter().flat_map(|s| s.to_le_bytes()).collect();
    let expected_bytes = StftAccel::new(n).process_block(&input_bytes);

    let run = CustomRun::new(
        Box::new(StftAccel::new(n)),
        words(&input_bytes),
        words(&expected_bytes),
    );
    let r = run.run();
    assert!(r.verified, "simulated STFT must match the functional model");
    assert_eq!(r.recorded.len(), 4 * n / 8);
}

#[test]
fn null_fifo_is_pure_communication() {
    let input: Vec<u64> = (0..512u64).map(|i| i * 3).collect();
    let r = CustomRun::new(
        Box::new(NullFifo::with_geometry(64, 1)),
        input.clone(),
        input,
    )
    .run();
    assert!(r.verified);
    // Engine counters agree with the data volume.
    assert_eq!(r.counter("engine", "consumed"), Some(512));
    assert_eq!(r.counter("engine", "produced"), Some(512));
}

#[test]
fn custom_run_with_small_batches_still_verifies() {
    let input: Vec<u64> = (0..128u64).collect();
    let mut run = CustomRun::new(Box::new(NullFifo::new()), input.clone(), input);
    run.batch = 4;
    run.backoff = 100;
    let r = run.run();
    assert!(r.verified);
}

#[test]
fn l2_interference_slows_cohort_but_preserves_correctness() {
    let scenario = Scenario::new(Workload::Sha, 512, 64);
    let clean = run_cohort(&scenario);
    let noisy = run_cohort_interfered(&scenario);
    assert!(clean.verified && noisy.verified);
    assert!(
        noisy.cycles > clean.cycles,
        "L2 thrashing must cost something: clean {} vs noisy {}",
        clean.cycles,
        noisy.cycles
    );
    // But the engine still streams correctly under contention.
    assert_eq!(noisy.counter("engine", "consumed"), Some(512));
}
