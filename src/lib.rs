//! Workspace root crate: hosts the integration tests in `tests/` and the
//! runnable examples in `examples/`. The library surface simply re-exports
//! the member crates for convenient use from those targets.

pub use cohort;
pub use cohort_accel;
pub use cohort_engine;
pub use cohort_maple;
pub use cohort_os;
pub use cohort_queue;
pub use cohort_sim;
